// Benchmark sources, part 1: 2mm, 3mm, atax, correlation, doitgen, gemver.
#include "kernels/sources_detail.hpp"

namespace socrates::kernels::detail {

const char* const kSource2mm = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define NI 800
#define NJ 900
#define NK 1100
#define NL 1200

double tmp[NI][NJ];
double A[NI][NK];
double B[NK][NJ];
double C[NJ][NL];
double D[NI][NL];

void init_array(int ni, int nj, int nk, int nl, double *alpha, double *beta)
{
  int i;
  int j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nk; j++)
      A[i][j] = (double)((i * j + 1) % ni) / ni;
  for (i = 0; i < nk; i++)
    for (j = 0; j < nj; j++)
      B[i][j] = (double)(i * (j + 1) % nj) / nj;
  for (i = 0; i < nj; i++)
    for (j = 0; j < nl; j++)
      C[i][j] = (double)((i * (j + 3) + 1) % nl) / nl;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
      D[i][j] = (double)(i * (j + 2) % nk) / nk;
}

void kernel_2mm(int ni, int nj, int nk, int nl, double alpha, double beta)
{
  int i;
  int j;
  int k;
  #pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nj; j++)
    {
      tmp[i][j] = 0.0;
      for (k = 0; k < nk; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  #pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
    {
      D[i][j] *= beta;
      for (k = 0; k < nj; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}

void print_array(int ni, int nl)
{
  int i;
  int j;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
    {
      fprintf(stderr, "%0.2lf ", D[i][j]);
      if ((i * ni + j) % 20 == 0)
        fprintf(stderr, "\n");
    }
}

int main(int argc, char **argv)
{
  int ni = NI;
  int nj = NJ;
  int nk = NK;
  int nl = NL;
  double alpha;
  double beta;
  init_array(ni, nj, nk, nl, &alpha, &beta);
  kernel_2mm(ni, nj, nk, nl, alpha, beta);
  if (argc > 42)
    print_array(ni, nl);
  return 0;
}
)SRC";

const char* const kSource3mm = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define NI 800
#define NJ 900
#define NK 1000
#define NL 1100
#define NM 1200

double E[NI][NJ];
double A[NI][NK];
double B[NK][NJ];
double F[NJ][NL];
double C[NJ][NM];
double D[NM][NL];
double G[NI][NL];

void init_array(int ni, int nj, int nk, int nl, int nm)
{
  int i;
  int j;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nk; j++)
      A[i][j] = (double)((i * j + 1) % ni) / (5 * ni);
  for (i = 0; i < nk; i++)
    for (j = 0; j < nj; j++)
      B[i][j] = (double)((i * (j + 1) + 2) % nj) / (5 * nj);
  for (i = 0; i < nj; i++)
    for (j = 0; j < nm; j++)
      C[i][j] = (double)(i * (j + 3) % nl) / (5 * nl);
  for (i = 0; i < nm; i++)
    for (j = 0; j < nl; j++)
      D[i][j] = (double)((i * (j + 2) + 2) % nk) / (5 * nk);
}

void kernel_3mm(int ni, int nj, int nk, int nl, int nm)
{
  int i;
  int j;
  int k;
  #pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nj; j++)
    {
      E[i][j] = 0.0;
      for (k = 0; k < nk; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  #pragma omp parallel for private(j, k)
  for (i = 0; i < nj; i++)
    for (j = 0; j < nl; j++)
    {
      F[i][j] = 0.0;
      for (k = 0; k < nm; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  #pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
    {
      G[i][j] = 0.0;
      for (k = 0; k < nj; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}

void print_array(int ni, int nl)
{
  int i;
  int j;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nl; j++)
      fprintf(stderr, "%0.2lf ", G[i][j]);
}

int main(int argc, char **argv)
{
  int ni = NI;
  int nj = NJ;
  int nk = NK;
  int nl = NL;
  int nm = NM;
  init_array(ni, nj, nk, nl, nm);
  kernel_3mm(ni, nj, nk, nl, nm);
  if (argc > 42)
    print_array(ni, nl);
  return 0;
}
)SRC";

const char* const kSourceAtax = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define M 1900
#define N 2100

double A[M][N];
double x[N];
double y[N];
double tmp[M];

void init_array(int m, int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    x[i] = 1.0 + i / (double)n;
  for (i = 0; i < m; i++)
    for (j = 0; j < n; j++)
      A[i][j] = (double)((i + j) % n) / (5 * m);
}

void kernel_atax(int m, int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    y[i] = 0.0;
  #pragma omp parallel for private(j)
  for (i = 0; i < m; i++)
  {
    tmp[i] = 0.0;
    for (j = 0; j < n; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
  }
  for (i = 0; i < m; i++)
    for (j = 0; j < n; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
}

void print_array(int n)
{
  int i;
  for (i = 0; i < n; i++)
    fprintf(stderr, "%0.2lf ", y[i]);
}

int main(int argc, char **argv)
{
  int m = M;
  int n = N;
  init_array(m, n);
  kernel_atax(m, n);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

const char* const kSourceCorrelation = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define K 1200
#define M 1000

double data[K][M];
double corr[M][M];
double mean[M];
double stddev[M];

void init_array(int k, int m, double *float_n)
{
  int i;
  int j;
  *float_n = (double)k;
  for (i = 0; i < k; i++)
    for (j = 0; j < m; j++)
      data[i][j] = (double)(i * j) / m + i;
}

void kernel_correlation(int k, int m, double float_n)
{
  int i;
  int j;
  int l;
  double eps = 0.1;
  for (j = 0; j < m; j++)
  {
    mean[j] = 0.0;
    for (i = 0; i < k; i++)
      mean[j] += data[i][j];
    mean[j] /= float_n;
  }
  for (j = 0; j < m; j++)
  {
    stddev[j] = 0.0;
    for (i = 0; i < k; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] /= float_n;
    stddev[j] = sqrt(stddev[j]);
    stddev[j] = stddev[j] <= eps ? 1.0 : stddev[j];
  }
  #pragma omp parallel for private(j)
  for (i = 0; i < k; i++)
    for (j = 0; j < m; j++)
    {
      data[i][j] -= mean[j];
      data[i][j] /= sqrt(float_n) * stddev[j];
    }
  #pragma omp parallel for private(j, l)
  for (i = 0; i < m - 1; i++)
  {
    corr[i][i] = 1.0;
    for (j = i + 1; j < m; j++)
    {
      corr[i][j] = 0.0;
      for (l = 0; l < k; l++)
        corr[i][j] += data[l][i] * data[l][j];
      corr[j][i] = corr[i][j];
    }
  }
  corr[m - 1][m - 1] = 1.0;
}

void print_array(int m)
{
  int i;
  int j;
  for (i = 0; i < m; i++)
    for (j = 0; j < m; j++)
      fprintf(stderr, "%0.2lf ", corr[i][j]);
}

int main(int argc, char **argv)
{
  int k = K;
  int m = M;
  double float_n;
  init_array(k, m, &float_n);
  kernel_correlation(k, m, float_n);
  if (argc > 42)
    print_array(m);
  return 0;
}
)SRC";

const char* const kSourceDoitgen = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define NQ 140
#define NR 150
#define NP 160

double A[NR][NQ][NP];
double C4[NP][NP];
double sum[NP];

void init_array(int nr, int nq, int np)
{
  int i;
  int j;
  int k;
  for (i = 0; i < nr; i++)
    for (j = 0; j < nq; j++)
      for (k = 0; k < np; k++)
        A[i][j][k] = (double)((i * j + k) % np) / np;
  for (i = 0; i < np; i++)
    for (j = 0; j < np; j++)
      C4[i][j] = (double)(i * j % np) / np;
}

void kernel_doitgen(int nr, int nq, int np)
{
  int r;
  int q;
  int p;
  int s;
  #pragma omp parallel for private(q, p, s)
  for (r = 0; r < nr; r++)
    for (q = 0; q < nq; q++)
    {
      for (p = 0; p < np; p++)
      {
        sum[p] = 0.0;
        for (s = 0; s < np; s++)
          sum[p] += A[r][q][s] * C4[s][p];
      }
      for (p = 0; p < np; p++)
        A[r][q][p] = sum[p];
    }
}

void print_array(int nr, int nq, int np)
{
  int i;
  int j;
  int k;
  for (i = 0; i < nr; i++)
    for (j = 0; j < nq; j++)
      for (k = 0; k < np; k++)
        fprintf(stderr, "%0.2lf ", A[i][j][k]);
}

int main(int argc, char **argv)
{
  int nr = NR;
  int nq = NQ;
  int np = NP;
  init_array(nr, nq, np);
  kernel_doitgen(nr, nq, np);
  if (argc > 42)
    print_array(nr, nq, np);
  return 0;
}
)SRC";

const char* const kSourceGemver = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 2000

double A[N][N];
double u1[N];
double v1[N];
double u2[N];
double v2[N];
double w[N];
double x[N];
double y[N];
double z[N];

void init_array(int n, double *alpha, double *beta)
{
  int i;
  int j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < n; i++)
  {
    u1[i] = i;
    u2[i] = ((i + 1.0) / n) / 2.0;
    v1[i] = ((i + 1.0) / n) / 4.0;
    v2[i] = ((i + 1.0) / n) / 6.0;
    y[i] = ((i + 1.0) / n) / 8.0;
    z[i] = ((i + 1.0) / n) / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (j = 0; j < n; j++)
      A[i][j] = (double)(i * j % n) / n;
  }
}

void kernel_gemver(int n, double alpha, double beta)
{
  int i;
  int j;
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (i = 0; i < n; i++)
    x[i] = x[i] + z[i];
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
}

void print_array(int n)
{
  int i;
  for (i = 0; i < n; i++)
    fprintf(stderr, "%0.2lf ", w[i]);
}

int main(int argc, char **argv)
{
  int n = N;
  double alpha;
  double beta;
  init_array(n, &alpha, &beta);
  kernel_gemver(n, alpha, beta);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

}  // namespace socrates::kernels::detail
