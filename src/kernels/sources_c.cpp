// Benchmark sources, part 3: the extended (beyond-the-paper) kernels —
// gemm, bicg, trmm, cholesky, lu, heat-3d.
#include "kernels/sources_detail.hpp"

namespace socrates::kernels::detail {

const char* const kSourceGemm = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define NI 1000
#define NJ 1100
#define NK 1200

double C[NI][NJ];
double A[NI][NK];
double B[NK][NJ];

void init_array(int ni, int nj, int nk, double *alpha, double *beta)
{
  int i;
  int j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nk; j++)
      A[i][j] = (double)((i * j + 1) % ni) / ni;
  for (i = 0; i < nk; i++)
    for (j = 0; j < nj; j++)
      B[i][j] = (double)(i * (j + 2) % nj) / nj;
  for (i = 0; i < ni; i++)
    for (j = 0; j < nj; j++)
      C[i][j] = (double)((i * j + 3) % ni) / nk;
}

void kernel_gemm(int ni, int nj, int nk, double alpha, double beta)
{
  int i;
  int j;
  int k;
  #pragma omp parallel for private(j, k)
  for (i = 0; i < ni; i++)
  {
    for (j = 0; j < nj; j++)
      C[i][j] *= beta;
    for (k = 0; k < nk; k++)
      for (j = 0; j < nj; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}

int main(int argc, char **argv)
{
  int ni = NI;
  int nj = NJ;
  int nk = NK;
  double alpha;
  double beta;
  init_array(ni, nj, nk, &alpha, &beta);
  kernel_gemm(ni, nj, nk, alpha, beta);
  if (argc > 42)
    fprintf(stderr, "%0.2lf", C[0][0]);
  return 0;
}
)SRC";

const char* const kSourceBicg = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define M 1900
#define N 2100

double A[N][M];
double s[M];
double q[N];
double p[M];
double r[N];

void init_array(int m, int n)
{
  int i;
  int j;
  for (i = 0; i < m; i++)
    p[i] = (double)(i % m) / m;
  for (i = 0; i < n; i++)
  {
    r[i] = (double)(i % n) / n;
    for (j = 0; j < m; j++)
      A[i][j] = (double)(i * (j + 1) % n) / n;
  }
}

void kernel_bicg(int m, int n)
{
  int i;
  int j;
  for (i = 0; i < m; i++)
    s[i] = 0.0;
  for (i = 0; i < n; i++)
    for (j = 0; j < m; j++)
      s[j] = s[j] + r[i] * A[i][j];
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
  {
    q[i] = 0.0;
    for (j = 0; j < m; j++)
      q[i] = q[i] + A[i][j] * p[j];
  }
}

int main(int argc, char **argv)
{
  int m = M;
  int n = N;
  init_array(m, n);
  kernel_bicg(m, n);
  if (argc > 42)
    fprintf(stderr, "%0.2lf %0.2lf", s[0], q[0]);
  return 0;
}
)SRC";

const char* const kSourceTrmm = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define M 1000
#define N 1200

double A[M][M];
double B[M][N];

void init_array(int m, int n, double *alpha)
{
  int i;
  int j;
  *alpha = 1.5;
  for (i = 0; i < m; i++)
  {
    for (j = 0; j < i; j++)
      A[i][j] = (double)((i + j) % m) / m;
    A[i][i] = 1.0;
    for (j = 0; j < n; j++)
      B[i][j] = (double)(n + (i - j)) / n;
  }
}

void kernel_trmm(int m, int n, double alpha)
{
  int i;
  int j;
  int k;
  #pragma omp parallel for private(i, k)
  for (j = 0; j < n; j++)
    for (i = 0; i < m; i++)
    {
      for (k = i + 1; k < m; k++)
        B[i][j] += A[k][i] * B[k][j];
      B[i][j] = alpha * B[i][j];
    }
}

int main(int argc, char **argv)
{
  int m = M;
  int n = N;
  double alpha;
  init_array(m, n, &alpha);
  kernel_trmm(m, n, alpha);
  if (argc > 42)
    fprintf(stderr, "%0.2lf", B[0][0]);
  return 0;
}
)SRC";

const char* const kSourceCholesky = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#define N 2000

double A[N][N];

void init_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
  {
    for (j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % n)) / n + 1.0;
    for (j = i + 1; j < n; j++)
      A[i][j] = 0.0;
    A[i][i] = 1.0;
  }
}

void kernel_cholesky(int n)
{
  int i;
  int j;
  int k;
  for (i = 0; i < n; i++)
  {
    for (j = 0; j < i; j++)
    {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[j][k];
      A[i][j] /= A[j][j];
    }
    #pragma omp parallel for
    for (k = 0; k < i; k++)
      A[i][i] -= A[i][k] * A[i][k];
    A[i][i] = sqrt(A[i][i]);
  }
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_cholesky(n);
  if (argc > 42)
    fprintf(stderr, "%0.2lf", A[0][0]);
  return 0;
}
)SRC";

const char* const kSourceLu = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 2000

double A[N][N];

void init_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
  {
    for (j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % n)) / n + 1.0;
    for (j = i + 1; j < n; j++)
      A[i][j] = 0.0;
    A[i][i] = 1.0;
  }
}

void kernel_lu(int n)
{
  int i;
  int j;
  int k;
  for (i = 0; i < n; i++)
  {
    for (j = 0; j < i; j++)
    {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] /= A[j][j];
    }
    #pragma omp parallel for private(k)
    for (j = i; j < n; j++)
      for (k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_lu(n);
  if (argc > 42)
    fprintf(stderr, "%0.2lf", A[0][0]);
  return 0;
}
)SRC";

const char* const kSourceHeat3d = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 120
#define TSTEPS 500

double A[N][N][N];
double B[N][N][N];

void init_array(int n)
{
  int i;
  int j;
  int k;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      for (k = 0; k < n; k++)
      {
        A[i][j][k] = (double)(i + j + (n - k)) * 10.0 / n;
        B[i][j][k] = A[i][j][k];
      }
}

void kernel_heat_3d(int tsteps, int n)
{
  int t;
  int i;
  int j;
  int k;
  for (t = 1; t <= tsteps; t++)
  {
    #pragma omp parallel for private(j, k)
    for (i = 1; i < n - 1; i++)
      for (j = 1; j < n - 1; j++)
        for (k = 1; k < n - 1; k++)
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k] + A[i - 1][j][k]) + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k] + A[i][j - 1][k]) + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k] + A[i][j][k - 1]) + A[i][j][k];
    #pragma omp parallel for private(j, k)
    for (i = 1; i < n - 1; i++)
      for (j = 1; j < n - 1; j++)
        for (k = 1; k < n - 1; k++)
          A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k] + B[i - 1][j][k]) + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k] + B[i][j - 1][k]) + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k] + B[i][j][k - 1]) + B[i][j][k];
  }
}

int main(int argc, char **argv)
{
  int n = N;
  int tsteps = TSTEPS;
  init_array(n);
  kernel_heat_3d(tsteps, n);
  if (argc > 42)
    fprintf(stderr, "%0.2lf", A[1][1][1]);
  return 0;
}
)SRC";

}  // namespace socrates::kernels::detail
