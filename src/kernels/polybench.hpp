// Real, runnable C++ implementations of the 12 Polybench/C benchmarks
// used in the paper's evaluation (Section III): 2mm, 3mm, atax,
// correlation, doitgen, gemver, jacobi-2d, mvt, nussinov, seidel-2d,
// syr2k, syrk.
//
// Each kernel follows the reference Polybench algorithm, initializes
// its inputs deterministically (the same formulas Polybench uses) and
// returns a checksum of the output array so results are verifiable and
// the compiler cannot dead-code-eliminate the work.  The examples run
// these for real; the figure benches use the platform model (this
// container has one core — see DESIGN.md §2).
//
// `n` scales every matrix dimension; kernels use Polybench's standard
// dimension ratios internally.  All kernels are parallelized with
// OpenMP where the reference benchmark is (the paper targets the
// OpenMP Polybench suite).
#pragma once

#include <cstddef>

namespace socrates::kernels {

/// D := alpha*A*B*C + beta*D  (two matrix multiplications).
double run_2mm(std::size_t n);

/// G := (A*B)*(C*D)  (three matrix multiplications).
double run_3mm(std::size_t n);

/// y := A^T * (A * x)  (matrix transpose-vector product chain).
double run_atax(std::size_t n);

/// Correlation matrix of a data matrix (mean/stddev normalization).
double run_correlation(std::size_t n);

/// Multi-resolution analysis kernel: sum := A x C4 over 3D data.
double run_doitgen(std::size_t n);

/// BLAS gemver: A := A + u1*v1' + u2*v2'; x := beta*A'*y + z; w := alpha*A*x.
double run_gemver(std::size_t n);

/// 2-D Jacobi stencil, TSTEPS iterations of a 5-point update.
double run_jacobi_2d(std::size_t n);

/// x1 := x1 + A*y1; x2 := x2 + A'*y2  (matrix-vector products).
double run_mvt(std::size_t n);

/// Nussinov RNA base-pair maximization (dynamic programming).
double run_nussinov(std::size_t n);

/// 2-D Gauss-Seidel stencil (loop-carried dependences; serial sweeps).
double run_seidel_2d(std::size_t n);

/// Symmetric rank-2k update: C := alpha*A*B' + alpha*B*A' + beta*C.
double run_syr2k(std::size_t n);

/// Symmetric rank-k update: C := alpha*A*A' + beta*C.
double run_syrk(std::size_t n);

}  // namespace socrates::kernels
