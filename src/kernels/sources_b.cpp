// Benchmark sources, part 2: jacobi-2d, mvt, nussinov, seidel-2d,
// syr2k, syrk — plus the name/source lookup tables.
#include "kernels/sources.hpp"
#include "kernels/sources_detail.hpp"

#include <map>

#include "support/error.hpp"

namespace socrates::kernels {

namespace detail {

const char* const kSourceJacobi2d = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 1300
#define TSTEPS 500

double A[N][N];
double B[N][N];

void init_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
    {
      A[i][j] = ((double)i * (j + 2) + 2) / n;
      B[i][j] = ((double)i * (j + 3) + 3) / n;
    }
}

void kernel_jacobi_2d(int tsteps, int n)
{
  int t;
  int i;
  int j;
  for (t = 0; t < tsteps; t++)
  {
    #pragma omp parallel for private(j)
    for (i = 1; i < n - 1; i++)
      for (j = 1; j < n - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][1 + j] + A[1 + i][j] + A[i - 1][j]);
    #pragma omp parallel for private(j)
    for (i = 1; i < n - 1; i++)
      for (j = 1; j < n - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][1 + j] + B[1 + i][j] + B[i - 1][j]);
  }
}

void print_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
    {
      fprintf(stderr, "%0.2lf ", A[i][j]);
      if ((i * n + j) % 20 == 0)
        fprintf(stderr, "\n");
    }
}

int main(int argc, char **argv)
{
  int n = N;
  int tsteps = TSTEPS;
  init_array(n);
  kernel_jacobi_2d(tsteps, n);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

const char* const kSourceMvt = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 2000

double A[N][N];
double x1[N];
double x2[N];
double y1[N];
double y2[N];

void init_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
  {
    x1[i] = (double)(i % n) / n;
    x2[i] = (double)((i + 1) % n) / n;
    y1[i] = (double)((i + 3) % n) / n;
    y2[i] = (double)((i + 4) % n) / n;
    for (j = 0; j < n; j++)
      A[i][j] = (double)(i * j % n) / n;
  }
}

void kernel_mvt(int n)
{
  int i;
  int j;
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      x1[i] = x1[i] + A[i][j] * y1[j];
  #pragma omp parallel for private(j)
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      x2[i] = x2[i] + A[j][i] * y2[j];
}

void print_array(int n)
{
  int i;
  for (i = 0; i < n; i++)
    fprintf(stderr, "%0.2lf %0.2lf ", x1[i], x2[i]);
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_mvt(n);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

const char* const kSourceNussinov = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 2500

int seq[N];
double table[N][N];

void init_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    seq[i] = (i + 1) % 4;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      table[i][j] = 0.0;
}

double max_score(double s1, double s2)
{
  return s1 >= s2 ? s1 : s2;
}

double match(int b1, int b2)
{
  return b1 + b2 == 3 ? 1.0 : 0.0;
}

void kernel_nussinov(int n)
{
  int i;
  int j;
  int k;
  for (i = n - 1; i >= 0; i--)
  {
    #pragma omp parallel for private(k)
    for (j = i + 1; j < n; j++)
    {
      if (j - 1 >= 0)
        table[i][j] = max_score(table[i][j], table[i][j - 1]);
      if (i + 1 < n)
        table[i][j] = max_score(table[i][j], table[i + 1][j]);
      if (j - 1 >= 0 && i + 1 < n)
      {
        if (i < j - 1)
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1] + match(seq[i], seq[j]));
        else
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1]);
      }
      for (k = i + 1; k < j; k++)
        table[i][j] = max_score(table[i][j], table[i][k] + table[k + 1][j]);
    }
  }
}

void print_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = i; j < n; j++)
      fprintf(stderr, "%0.2lf ", table[i][j]);
}

int main(int argc, char **argv)
{
  int n = N;
  init_array(n);
  kernel_nussinov(n);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

const char* const kSourceSeidel2d = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 2000
#define TSTEPS 100

double A[N][N];

void init_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      A[i][j] = ((double)i * (j + 2) + 2) / n;
}

void kernel_seidel_2d(int tsteps, int n)
{
  int t;
  int i;
  int j;
  #pragma omp parallel for private(i, j)
  for (t = 0; t <= tsteps - 1; t++)
    for (i = 1; i <= n - 2; i++)
      for (j = 1; j <= n - 2; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1] + A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
}

void print_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      fprintf(stderr, "%0.2lf ", A[i][j]);
}

int main(int argc, char **argv)
{
  int n = N;
  int tsteps = TSTEPS;
  init_array(n);
  kernel_seidel_2d(tsteps, n);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

const char* const kSourceSyr2k = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 1200
#define M 1000

double C[N][N];
double A[N][M];
double B[N][M];

void init_array(int n, int m, double *alpha, double *beta)
{
  int i;
  int j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < n; i++)
    for (j = 0; j < m; j++)
    {
      A[i][j] = (double)((i * j + 1) % n) / n;
      B[i][j] = (double)((i * j + 2) % m) / m;
    }
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      C[i][j] = (double)((i * j + 3) % n) / m;
}

void kernel_syr2k(int n, int m, double alpha, double beta)
{
  int i;
  int j;
  int k;
  #pragma omp parallel for private(j, k)
  for (i = 0; i < n; i++)
  {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < m; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
}

void print_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      fprintf(stderr, "%0.2lf ", C[i][j]);
}

int main(int argc, char **argv)
{
  int n = N;
  int m = M;
  double alpha;
  double beta;
  init_array(n, m, &alpha, &beta);
  kernel_syr2k(n, m, alpha, beta);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

const char* const kSourceSyrk = R"SRC(
#include <stdio.h>
#include <stdlib.h>
#define N 1200
#define M 1000

double C[N][N];
double A[N][M];

void init_array(int n, int m, double *alpha, double *beta)
{
  int i;
  int j;
  *alpha = 1.5;
  *beta = 1.2;
  for (i = 0; i < n; i++)
    for (j = 0; j < m; j++)
      A[i][j] = (double)((i * j + 1) % n) / n;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      C[i][j] = (double)((i * j + 2) % m) / m;
}

void kernel_syrk(int n, int m, double alpha, double beta)
{
  int i;
  int j;
  int k;
  #pragma omp parallel for private(j, k)
  for (i = 0; i < n; i++)
  {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < m; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}

void print_array(int n)
{
  int i;
  int j;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++)
      fprintf(stderr, "%0.2lf ", C[i][j]);
}

int main(int argc, char **argv)
{
  int n = N;
  int m = M;
  double alpha;
  double beta;
  init_array(n, m, &alpha, &beta);
  kernel_syrk(n, m, alpha, beta);
  if (argc > 42)
    print_array(n);
  return 0;
}
)SRC";

}  // namespace detail

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> kNames = {
      "2mm",      "3mm",       "atax",      "correlation", "doitgen", "gemver",
      "jacobi-2d", "mvt",      "nussinov",  "seidel-2d",   "syr2k",   "syrk",
  };
  return kNames;
}

const std::vector<std::string>& extended_benchmark_names() {
  static const std::vector<std::string> kNames = {
      "gemm", "bicg", "trmm", "cholesky", "lu", "heat-3d",
  };
  return kNames;
}

const std::string& benchmark_source(const std::string& name) {
  static const std::map<std::string, std::string> kSources = {
      {"2mm", detail::kSource2mm},
      {"3mm", detail::kSource3mm},
      {"atax", detail::kSourceAtax},
      {"correlation", detail::kSourceCorrelation},
      {"doitgen", detail::kSourceDoitgen},
      {"gemver", detail::kSourceGemver},
      {"jacobi-2d", detail::kSourceJacobi2d},
      {"mvt", detail::kSourceMvt},
      {"nussinov", detail::kSourceNussinov},
      {"seidel-2d", detail::kSourceSeidel2d},
      {"syr2k", detail::kSourceSyr2k},
      {"syrk", detail::kSourceSyrk},
      {"gemm", detail::kSourceGemm},
      {"bicg", detail::kSourceBicg},
      {"trmm", detail::kSourceTrmm},
      {"cholesky", detail::kSourceCholesky},
      {"lu", detail::kSourceLu},
      {"heat-3d", detail::kSourceHeat3d},
  };
  const auto it = kSources.find(name);
  SOCRATES_REQUIRE_MSG(it != kSources.end(), "unknown benchmark '" << name << "'");
  return it->second;
}

}  // namespace socrates::kernels
