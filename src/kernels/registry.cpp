#include "kernels/registry.hpp"

#include "kernels/polybench.hpp"
#include "kernels/polybench_ext.hpp"
#include "support/error.hpp"

namespace socrates::kernels {

namespace {

using platform::KernelModelParams;

/// Calibration notes (see DESIGN.md §2, substitution 1):
///   seq_work_s        — single-thread -O2 time on the reference (LARGE)
///                       dataset, scaled so 2mm's tuned/untuned extremes
///                       land near the paper's Figure 4 range (1.1-15 s);
///   parallel_fraction — loops outside "#pragma omp parallel for" are
///                       serial (atax/gemver have serial sweeps,
///                       seidel-2d is dependence-limited);
///   mem_intensity     — matvec/rank-1-update kernels are bandwidth
///                       bound, matmul kernels compute bound, stencils
///                       in between;
///   the flag affinities follow each kernel's structure (tight regular
///   nests unroll well; correlation calls sqrt so inlining matters;
///   nussinov is branchy and calls helpers in its hot loop).
KernelModelParams params(const char* name, double w, double fpar, double mem,
                         double unroll, double vec, double fp, double branchy,
                         double calls, double icache, double ivopt, double loopopt) {
  KernelModelParams p;
  p.name = name;
  p.seq_work_s = w;
  p.parallel_fraction = fpar;
  p.mem_intensity = mem;
  p.unroll_affinity = unroll;
  p.vectorization_affinity = vec;
  p.fp_ratio = fp;
  p.branchiness = branchy;
  p.call_density = calls;
  p.icache_sensitivity = icache;
  p.ivopt_sensitivity = ivopt;
  p.loop_opt_sensitivity = loopopt;
  return p;
}

std::vector<BenchmarkInfo> build_registry() {
  std::vector<BenchmarkInfo> v;
  v.push_back({"2mm", "kernel_2mm",
               params("2mm", 13.0, 0.99, 0.25, 0.70, 0.85, 0.95, 0.05, 0.02, 0.15,
                      0.60, 0.60),
               run_2mm});
  v.push_back({"3mm", "kernel_3mm",
               params("3mm", 16.0, 0.99, 0.25, 0.70, 0.85, 0.95, 0.05, 0.02, 0.20,
                      0.60, 0.60),
               run_3mm});
  v.push_back({"atax", "kernel_atax",
               params("atax", 2.2, 0.92, 0.72, 0.35, 0.60, 0.90, 0.06, 0.02, 0.10,
                      0.45, 0.50),
               run_atax});
  v.push_back({"correlation", "kernel_correlation",
               params("correlation", 7.5, 0.97, 0.45, 0.45, 0.60, 0.92, 0.30, 0.25,
                      0.25, 0.50, 0.50),
               run_correlation});
  v.push_back({"doitgen", "kernel_doitgen",
               params("doitgen", 5.0, 0.98, 0.35, 0.60, 0.70, 0.95, 0.04, 0.02, 0.20,
                      0.65, 0.55),
               run_doitgen});
  v.push_back({"gemver", "kernel_gemver",
               params("gemver", 3.0, 0.96, 0.75, 0.40, 0.65, 0.93, 0.05, 0.02, 0.12,
                      0.50, 0.45),
               run_gemver});
  v.push_back({"jacobi-2d", "kernel_jacobi_2d",
               params("jacobi-2d", 9.0, 0.985, 0.60, 0.50, 0.80, 0.95, 0.07, 0.01,
                      0.15, 0.55, 0.35),
               run_jacobi_2d});
  v.push_back({"mvt", "kernel_mvt",
               params("mvt", 2.0, 0.95, 0.70, 0.40, 0.60, 0.92, 0.04, 0.01, 0.10,
                      0.50, 0.50),
               run_mvt});
  v.push_back({"nussinov", "kernel_nussinov",
               params("nussinov", 8.0, 0.90, 0.40, 0.30, 0.20, 0.60, 0.60, 0.55,
                      0.30, 0.40, 0.45),
               run_nussinov});
  v.push_back({"seidel-2d", "kernel_seidel_2d",
               params("seidel-2d", 6.0, 0.40, 0.50, 0.45, 0.30, 0.95, 0.05, 0.01,
                      0.10, 0.60, 0.40),
               run_seidel_2d});
  v.push_back({"syr2k", "kernel_syr2k",
               params("syr2k", 7.0, 0.98, 0.30, 0.65, 0.75, 0.95, 0.12, 0.02, 0.15,
                      0.55, 0.55),
               run_syr2k});
  v.push_back({"syrk", "kernel_syrk",
               params("syrk", 5.5, 0.98, 0.30, 0.65, 0.75, 0.95, 0.12, 0.02, 0.12,
                      0.55, 0.55),
               run_syrk});
  return v;
}

std::vector<BenchmarkInfo> build_extended_registry() {
  std::vector<BenchmarkInfo> v;
  v.push_back({"gemm", "kernel_gemm",
               params("gemm", 9.0, 0.99, 0.25, 0.70, 0.85, 0.95, 0.04, 0.02, 0.15,
                      0.60, 0.60),
               run_gemm});
  v.push_back({"bicg", "kernel_bicg",
               params("bicg", 2.4, 0.93, 0.72, 0.35, 0.60, 0.90, 0.05, 0.02, 0.10,
                      0.45, 0.50),
               run_bicg});
  v.push_back({"trmm", "kernel_trmm",
               params("trmm", 6.0, 0.98, 0.30, 0.60, 0.70, 0.95, 0.15, 0.02, 0.15,
                      0.55, 0.55),
               run_trmm});
  v.push_back({"cholesky", "kernel_cholesky",
               // Triangular dependences limit parallelism; sqrt calls.
               params("cholesky", 7.0, 0.70, 0.35, 0.45, 0.45, 0.95, 0.20, 0.20, 0.20,
                      0.50, 0.50),
               run_cholesky});
  v.push_back({"lu", "kernel_lu",
               params("lu", 9.5, 0.75, 0.35, 0.50, 0.55, 0.95, 0.15, 0.02, 0.20,
                      0.55, 0.50),
               run_lu});
  v.push_back({"heat-3d", "kernel_heat_3d",
               params("heat-3d", 10.0, 0.985, 0.65, 0.50, 0.80, 0.95, 0.07, 0.01,
                      0.20, 0.55, 0.35),
               run_heat_3d});
  return v;
}

}  // namespace

const std::vector<BenchmarkInfo>& all_benchmarks() {
  static const std::vector<BenchmarkInfo> kRegistry = build_registry();
  return kRegistry;
}

const std::vector<BenchmarkInfo>& extended_benchmarks() {
  static const std::vector<BenchmarkInfo> kRegistry = build_extended_registry();
  return kRegistry;
}

const BenchmarkInfo& find_benchmark(const std::string& name) {
  for (const auto& b : all_benchmarks())
    if (b.name == name) return b;
  for (const auto& b : extended_benchmarks())
    if (b.name == name) return b;
  SOCRATES_REQUIRE_MSG(false, "unknown benchmark '" << name << "'");
  return all_benchmarks().front();  // unreachable
}

}  // namespace socrates::kernels
