// Internal: raw benchmark source constants, split across two
// translation units to keep file sizes reasonable.
#pragma once

namespace socrates::kernels::detail {

extern const char* const kSource2mm;
extern const char* const kSource3mm;
extern const char* const kSourceAtax;
extern const char* const kSourceCorrelation;
extern const char* const kSourceDoitgen;
extern const char* const kSourceGemver;
extern const char* const kSourceJacobi2d;
extern const char* const kSourceMvt;
extern const char* const kSourceNussinov;
extern const char* const kSourceSeidel2d;
extern const char* const kSourceSyr2k;
extern const char* const kSourceSyrk;

// Extended suite (sources_c.cpp).
extern const char* const kSourceGemm;
extern const char* const kSourceBicg;
extern const char* const kSourceTrmm;
extern const char* const kSourceCholesky;
extern const char* const kSourceLu;
extern const char* const kSourceHeat3d;

}  // namespace socrates::kernels::detail
