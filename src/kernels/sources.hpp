// Embedded Polybench/C benchmark sources.
//
// These are the inputs of the SOCRATES toolchain: real C sources in the
// front end's subset, following the reference Polybench structure
// (size #defines, global arrays, init_array, the kernel_* function with
// its OpenMP pragmas, print_array and main).  The weaver parses these,
// applies the Multiversioning and Autotuner LARA strategies, and the
// Table I bench counts attributes/actions/LOC on the result.
#pragma once

#include <string>
#include <vector>

namespace socrates::kernels {

/// The benchmark names used throughout the paper, in Table I order.
const std::vector<std::string>& benchmark_names();

/// Additional Polybench kernels beyond the paper's evaluation set
/// (gemm, bicg, trmm, cholesky, lu, heat-3d).  The paper benches only
/// use benchmark_names(); the extended set widens the library.
const std::vector<std::string>& extended_benchmark_names();

/// The C source of one benchmark (paper or extended set).  Throws for
/// unknown names.
const std::string& benchmark_source(const std::string& name);

}  // namespace socrates::kernels
