// Benchmark registry: one row per Polybench application tying together
// everything SOCRATES knows about it — the C source (weaver input), the
// calibrated platform-model parameters (simulated hardware behaviour)
// and the real C++ runner (actual execution for the examples).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "platform/kernel_model.hpp"

namespace socrates::kernels {

struct BenchmarkInfo {
  std::string name;                       ///< Polybench name, e.g. "2mm"
  std::string kernel_function;            ///< e.g. "kernel_2mm"
  platform::KernelModelParams model;      ///< calibrated model parameters
  std::function<double(std::size_t)> run; ///< real execution, returns checksum
};

/// The paper's 12 benchmarks in Table I order (the evaluation set every
/// figure/table bench iterates).
const std::vector<BenchmarkInfo>& all_benchmarks();

/// The extended suite (gemm, bicg, trmm, cholesky, lu, heat-3d) —
/// available to the toolchain and examples but not part of the paper's
/// campaign.
const std::vector<BenchmarkInfo>& extended_benchmarks();

/// Lookup by name across both sets; throws on unknown names.
const BenchmarkInfo& find_benchmark(const std::string& name);

}  // namespace socrates::kernels
