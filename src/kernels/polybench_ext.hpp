// Extended Polybench kernels, beyond the 12 the paper evaluates.
//
// The paper's campaign uses 12 applications; the Polybench suite is
// larger, and a framework users adopt should not be hard-wired to the
// evaluation set.  These six cover the structural classes the original
// 12 miss: a plain gemm, a dual matvec (bicg), a triangular multiply
// (trmm), two factorizations with loop-carried dependences and
// triangular iteration spaces (cholesky, lu) and a 3-D stencil
// (heat-3d).  Same contract as polybench.hpp: deterministic inputs,
// checksum of the output.
#pragma once

#include <cstddef>

namespace socrates::kernels {

/// C := alpha*A*B + beta*C.
double run_gemm(std::size_t n);

/// s := A^T * r;  q := A * p  (BiCG sub-kernel).
double run_bicg(std::size_t n);

/// B := alpha * A * B with A unit lower triangular.
double run_trmm(std::size_t n);

/// In-place Cholesky factorization of a symmetric positive-definite
/// matrix (lower triangle).
double run_cholesky(std::size_t n);

/// In-place LU decomposition without pivoting (diagonally dominant
/// input keeps it stable).
double run_lu(std::size_t n);

/// 3-D heat-equation stencil, TSTEPS Jacobi-style sweeps.
double run_heat_3d(std::size_t n);

}  // namespace socrates::kernels
