#include "kernels/polybench_ext.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace socrates::kernels {

namespace {

using Matrix = std::vector<double>;

double checksum(const Matrix& m) {
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i)
    acc += m[i] * (1.0 + static_cast<double>(i % 7) * 0.125);
  return acc;
}

}  // namespace

double run_gemm(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t ni = n, nj = n + n / 8, nk = n - n / 8;
  const double alpha = 1.5, beta = 1.2;
  Matrix a(ni * nk), b(nk * nj), c(ni * nj);
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t k = 0; k < nk; ++k)
      a[i * nk + k] = static_cast<double>((i * k + 1) % ni) / ni;
  for (std::size_t k = 0; k < nk; ++k)
    for (std::size_t j = 0; j < nj; ++j)
      b[k * nj + j] = static_cast<double>(k * (j + 2) % nj) / nj;
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j)
      c[i * nj + j] = static_cast<double>((i * j + 3) % ni) / nk;

#pragma omp parallel for
  for (std::size_t i = 0; i < ni; ++i) {
    for (std::size_t j = 0; j < nj; ++j) c[i * nj + j] *= beta;
    for (std::size_t k = 0; k < nk; ++k)
      for (std::size_t j = 0; j < nj; ++j)
        c[i * nj + j] += alpha * a[i * nk + k] * b[k * nj + j];
  }
  return checksum(c);
}

double run_bicg(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t rows = n + n / 5, cols = n;
  Matrix a(rows * cols);
  std::vector<double> s(cols, 0.0), q(rows, 0.0), p(cols), r(rows);
  for (std::size_t j = 0; j < cols; ++j)
    p[j] = static_cast<double>(j % cols) / cols;
  for (std::size_t i = 0; i < rows; ++i) {
    r[i] = static_cast<double>(i % rows) / rows;
    for (std::size_t j = 0; j < cols; ++j)
      a[i * cols + j] = static_cast<double>(i * (j + 1) % rows) / rows;
  }

  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) s[j] += r[i] * a[i * cols + j];
#pragma omp parallel for
  for (std::size_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += a[i * cols + j] * p[j];
    q[i] = acc;
  }
  return checksum(s) + checksum(q);
}

double run_trmm(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t m = n, nn = n + n / 6;
  const double alpha = 1.5;
  Matrix a(m * m), b(m * nn);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < i; ++j)
      a[i * m + j] = static_cast<double>((i + j) % m) / m;
    a[i * m + i] = 1.0;
    for (std::size_t j = 0; j < nn; ++j)
      b[i * nn + j] = static_cast<double>(nn + (i - j)) / nn;
  }

#pragma omp parallel for
  for (std::size_t j = 0; j < nn; ++j)
    for (std::size_t i = 0; i < m; ++i) {
      double acc = b[i * nn + j];
      for (std::size_t k = i + 1; k < m; ++k) acc += a[k * m + i] * b[k * nn + j];
      b[i * nn + j] = alpha * acc;
    }
  return checksum(b);
}

namespace {

/// Diagonally dominant SPD-ish matrix shared by cholesky and lu.
Matrix factorization_input(std::size_t n) {
  Matrix a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j)
      a[i * n + j] = static_cast<double>(-static_cast<double>(j % n)) / n + 1.0;
    for (std::size_t j = i + 1; j < n; ++j) a[i * n + j] = 0.0;
    a[i * n + i] = 1.0;
  }
  // A := B * B^T of the triangular seed, guaranteed SPD (Polybench's
  // own trick).
  Matrix spd(n * n, 0.0);
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t s = 0; s <= std::min(r, t); ++s)
        spd[r * n + t] += a[r * n + s] * a[t * n + s];
  return spd;
}

}  // namespace

double run_cholesky(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  Matrix a = factorization_input(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double acc = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) acc -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = acc / a[j * n + j];
    }
    double diag = a[i * n + i];
    for (std::size_t k = 0; k < i; ++k) diag -= a[i * n + k] * a[i * n + k];
    SOCRATES_ENSURE(diag > 0.0);
    a[i * n + i] = std::sqrt(diag);
  }
  // Checksum the lower triangle only (the factor).
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      acc += a[i * n + j] * (1.0 + static_cast<double>((i * n + j) % 7) * 0.125);
  return acc;
}

double run_lu(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  Matrix a = factorization_input(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double acc = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) acc -= a[i * n + k] * a[k * n + j];
      a[i * n + j] = acc / a[j * n + j];
    }
#pragma omp parallel for
    for (std::size_t j = i; j < n; ++j) {
      double acc = a[i * n + j];
      for (std::size_t k = 0; k < i; ++k) acc -= a[i * n + k] * a[k * n + j];
      a[i * n + j] = acc;
    }
  }
  return checksum(a);
}

double run_heat_3d(std::size_t n) {
  SOCRATES_REQUIRE(n >= 4);
  const std::size_t tsteps = std::max<std::size_t>(2, n / 10);
  Matrix a(n * n * n), b(n * n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < n; ++k)
        a[(i * n + j) * n + k] = b[(i * n + j) * n + k] =
            static_cast<double>(i + j + (n - k)) * 10.0 / n;

  const auto at = [n](Matrix& m, std::size_t i, std::size_t j,
                      std::size_t k) -> double& { return m[(i * n + j) * n + k]; };

  for (std::size_t t = 0; t < tsteps; ++t) {
#pragma omp parallel for
    for (std::size_t i = 1; i < n - 1; ++i)
      for (std::size_t j = 1; j < n - 1; ++j)
        for (std::size_t k = 1; k < n - 1; ++k)
          at(b, i, j, k) =
              0.125 * (at(a, i + 1, j, k) - 2.0 * at(a, i, j, k) + at(a, i - 1, j, k)) +
              0.125 * (at(a, i, j + 1, k) - 2.0 * at(a, i, j, k) + at(a, i, j - 1, k)) +
              0.125 * (at(a, i, j, k + 1) - 2.0 * at(a, i, j, k) + at(a, i, j, k - 1)) +
              at(a, i, j, k);
#pragma omp parallel for
    for (std::size_t i = 1; i < n - 1; ++i)
      for (std::size_t j = 1; j < n - 1; ++j)
        for (std::size_t k = 1; k < n - 1; ++k)
          at(a, i, j, k) =
              0.125 * (at(b, i + 1, j, k) - 2.0 * at(b, i, j, k) + at(b, i - 1, j, k)) +
              0.125 * (at(b, i, j + 1, k) - 2.0 * at(b, i, j, k) + at(b, i, j - 1, k)) +
              0.125 * (at(b, i, j, k + 1) - 2.0 * at(b, i, j, k) + at(b, i, j, k - 1)) +
              at(b, i, j, k);
  }
  return checksum(a);
}

}  // namespace socrates::kernels
