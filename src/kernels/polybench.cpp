#include "kernels/polybench.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace socrates::kernels {

namespace {

using Matrix = std::vector<double>;  // row-major, dims carried alongside

double checksum(const Matrix& m) {
  // Polybench-style: sum with a mild positional weight so permuted
  // results do not collide.
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i)
    acc += m[i] * (1.0 + static_cast<double>(i % 7) * 0.125);
  return acc;
}

}  // namespace

double run_2mm(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t ni = n, nj = n + n / 4, nk = n - n / 8, nl = n + n / 8;
  const double alpha = 1.5, beta = 1.2;
  Matrix a(ni * nk), b(nk * nj), c(nj * nl), d(ni * nl), tmp(ni * nj);

  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t k = 0; k < nk; ++k)
      a[i * nk + k] = static_cast<double>((i * k + 1) % ni) / ni;
  for (std::size_t k = 0; k < nk; ++k)
    for (std::size_t j = 0; j < nj; ++j)
      b[k * nj + j] = static_cast<double>(k * (j + 1) % nj) / nj;
  for (std::size_t j = 0; j < nj; ++j)
    for (std::size_t l = 0; l < nl; ++l)
      c[j * nl + l] = static_cast<double>((j * (l + 3) + 1) % nl) / nl;
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t l = 0; l < nl; ++l)
      d[i * nl + l] = static_cast<double>(i * (l + 2) % nk) / nk;

#pragma omp parallel for
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < nk; ++k) acc += alpha * a[i * nk + k] * b[k * nj + j];
      tmp[i * nj + j] = acc;
    }
#pragma omp parallel for
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t l = 0; l < nl; ++l) {
      double acc = d[i * nl + l] * beta;
      for (std::size_t j = 0; j < nj; ++j) acc += tmp[i * nj + j] * c[j * nl + l];
      d[i * nl + l] = acc;
    }
  return checksum(d);
}

double run_3mm(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t ni = n, nj = n + n / 8, nk = n - n / 8, nl = n + n / 4,
                    nm = n - n / 4 + 1;
  Matrix a(ni * nk), b(nk * nj), c(nj * nm), d(nm * nl);
  Matrix e(ni * nj), f(nj * nl), g(ni * nl);

  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t k = 0; k < nk; ++k)
      a[i * nk + k] = static_cast<double>((i * k + 1) % ni) / (5 * ni);
  for (std::size_t k = 0; k < nk; ++k)
    for (std::size_t j = 0; j < nj; ++j)
      b[k * nj + j] = static_cast<double>((k * (j + 1) + 2) % nj) / (5 * nj);
  for (std::size_t j = 0; j < nj; ++j)
    for (std::size_t m = 0; m < nm; ++m)
      c[j * nm + m] = static_cast<double>(j * (m + 3) % nl) / (5 * nl);
  for (std::size_t m = 0; m < nm; ++m)
    for (std::size_t l = 0; l < nl; ++l)
      d[m * nl + l] = static_cast<double>((m * (l + 2) + 2) % nk) / (5 * nk);

#pragma omp parallel for
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t j = 0; j < nj; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < nk; ++k) acc += a[i * nk + k] * b[k * nj + j];
      e[i * nj + j] = acc;
    }
#pragma omp parallel for
  for (std::size_t j = 0; j < nj; ++j)
    for (std::size_t l = 0; l < nl; ++l) {
      double acc = 0.0;
      for (std::size_t m = 0; m < nm; ++m) acc += c[j * nm + m] * d[m * nl + l];
      f[j * nl + l] = acc;
    }
#pragma omp parallel for
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t l = 0; l < nl; ++l) {
      double acc = 0.0;
      for (std::size_t j = 0; j < nj; ++j) acc += e[i * nj + j] * f[j * nl + l];
      g[i * nl + l] = acc;
    }
  return checksum(g);
}

double run_atax(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t m = n, nn = n + n / 4;
  Matrix a(m * nn);
  std::vector<double> x(nn), y(nn, 0.0), tmp(m);

  for (std::size_t j = 0; j < nn; ++j)
    x[j] = 1.0 + static_cast<double>(j) / static_cast<double>(nn);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < nn; ++j)
      a[i * nn + j] = static_cast<double>((i + j) % nn) / (5.0 * m);

#pragma omp parallel for
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < nn; ++j) acc += a[i * nn + j] * x[j];
    tmp[i] = acc;
  }
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < nn; ++j) y[j] += a[i * nn + j] * tmp[i];
  return checksum(y);
}

double run_correlation(std::size_t n) {
  SOCRATES_REQUIRE(n >= 3);
  const std::size_t points = n + n / 5, vars = n;
  const double float_n = static_cast<double>(points);
  Matrix data(points * vars), corr(vars * vars, 0.0);
  std::vector<double> mean(vars, 0.0), stddev(vars, 0.0);

  for (std::size_t i = 0; i < points; ++i)
    for (std::size_t j = 0; j < vars; ++j)
      data[i * vars + j] =
          static_cast<double>(i * j) / static_cast<double>(vars) + static_cast<double>(i);

  for (std::size_t j = 0; j < vars; ++j) {
    for (std::size_t i = 0; i < points; ++i) mean[j] += data[i * vars + j];
    mean[j] /= float_n;
  }
  for (std::size_t j = 0; j < vars; ++j) {
    for (std::size_t i = 0; i < points; ++i) {
      const double d = data[i * vars + j] - mean[j];
      stddev[j] += d * d;
    }
    stddev[j] = std::sqrt(stddev[j] / float_n);
    if (stddev[j] <= 0.1) stddev[j] = 1.0;  // Polybench's epsilon guard
  }
#pragma omp parallel for
  for (std::size_t i = 0; i < points; ++i)
    for (std::size_t j = 0; j < vars; ++j) {
      data[i * vars + j] -= mean[j];
      data[i * vars + j] /= std::sqrt(float_n) * stddev[j];
    }
#pragma omp parallel for
  for (std::size_t i = 0; i < vars - 1; ++i) {
    corr[i * vars + i] = 1.0;
    for (std::size_t j = i + 1; j < vars; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < points; ++k)
        acc += data[k * vars + i] * data[k * vars + j];
      corr[i * vars + j] = acc;
      corr[j * vars + i] = acc;
    }
  }
  corr[(vars - 1) * vars + (vars - 1)] = 1.0;
  return checksum(corr);
}

double run_doitgen(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t nr = n / 2 + 1, nq = n / 2 + 2, np = n;
  Matrix a(nr * nq * np), c4(np * np), sum(np);

  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t q = 0; q < nq; ++q)
      for (std::size_t p = 0; p < np; ++p)
        a[(r * nq + q) * np + p] =
            static_cast<double>((r * q + p) % np) / static_cast<double>(np);
  for (std::size_t i = 0; i < np; ++i)
    for (std::size_t j = 0; j < np; ++j)
      c4[i * np + j] = static_cast<double>(i * j % np) / static_cast<double>(np);

  for (std::size_t r = 0; r < nr; ++r)
    for (std::size_t q = 0; q < nq; ++q) {
      for (std::size_t p = 0; p < np; ++p) {
        double acc = 0.0;
        for (std::size_t s = 0; s < np; ++s) acc += a[(r * nq + q) * np + s] * c4[s * np + p];
        sum[p] = acc;
      }
      for (std::size_t p = 0; p < np; ++p) a[(r * nq + q) * np + p] = sum[p];
    }
  return checksum(a);
}

double run_gemver(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const double alpha = 1.5, beta = 1.2;
  Matrix a(n * n);
  std::vector<double> u1(n), v1(n), u2(n), v2(n), w(n, 0.0), x(n, 0.0), y(n), z(n);

  const double fn = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double fi = static_cast<double>(i);
    u1[i] = fi;
    u2[i] = ((fi + 1.0) / fn) / 2.0;
    v1[i] = ((fi + 1.0) / fn) / 4.0;
    v2[i] = ((fi + 1.0) / fn) / 6.0;
    y[i] = ((fi + 1.0) / fn) / 8.0;
    z[i] = ((fi + 1.0) / fn) / 9.0;
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = static_cast<double>(i * j % n) / fn;
  }

#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < n; ++j) acc += beta * a[j * n + i] * y[j];
    x[i] = acc;
  }
  for (std::size_t i = 0; i < n; ++i) x[i] += z[i];
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    double acc = w[i];
    for (std::size_t j = 0; j < n; ++j) acc += alpha * a[i * n + j] * x[j];
    w[i] = acc;
  }
  return checksum(w);
}

double run_jacobi_2d(std::size_t n) {
  SOCRATES_REQUIRE(n >= 4);
  const std::size_t tsteps = std::max<std::size_t>(2, n / 8);
  Matrix a(n * n), b(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] = (static_cast<double>(i) * (j + 2) + 2.0) / static_cast<double>(n);
      b[i * n + j] = (static_cast<double>(i) * (j + 3) + 3.0) / static_cast<double>(n);
    }

  for (std::size_t t = 0; t < tsteps; ++t) {
#pragma omp parallel for
    for (std::size_t i = 1; i < n - 1; ++i)
      for (std::size_t j = 1; j < n - 1; ++j)
        b[i * n + j] = 0.2 * (a[i * n + j] + a[i * n + j - 1] + a[i * n + j + 1] +
                              a[(i + 1) * n + j] + a[(i - 1) * n + j]);
#pragma omp parallel for
    for (std::size_t i = 1; i < n - 1; ++i)
      for (std::size_t j = 1; j < n - 1; ++j)
        a[i * n + j] = 0.2 * (b[i * n + j] + b[i * n + j - 1] + b[i * n + j + 1] +
                              b[(i + 1) * n + j] + b[(i - 1) * n + j]);
  }
  return checksum(a);
}

double run_mvt(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  Matrix a(n * n);
  std::vector<double> x1(n), x2(n), y1(n), y2(n);
  const double fn = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double fi = static_cast<double>(i);
    x1[i] = fi / fn;
    x2[i] = (fi + 1.0) / fn;
    y1[i] = (fi + 3.0) / fn;
    y2[i] = (fi + 4.0) / fn;
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = static_cast<double>(i * j % n) / fn;
  }

#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x1[i];
    for (std::size_t j = 0; j < n; ++j) acc += a[i * n + j] * y1[j];
    x1[i] = acc;
  }
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x2[i];
    for (std::size_t j = 0; j < n; ++j) acc += a[j * n + i] * y2[j];
    x2[i] = acc;
  }
  return checksum(x1) + checksum(x2);
}

double run_nussinov(std::size_t n) {
  SOCRATES_REQUIRE(n >= 4);
  // Bases 0..3 (A,C,G,U); Watson-Crick-ish pairing: i+j == 3.
  std::vector<int> seq(n);
  for (std::size_t i = 0; i < n; ++i) seq[i] = static_cast<int>((i + 1) % 4);
  std::vector<double> table(n * n, 0.0);

  const auto match = [&](std::size_t b1, std::size_t b2) {
    return seq[b1] + seq[b2] == 3 ? 1.0 : 0.0;
  };

  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double best = table[i * n + j];
      if (j >= 1) best = std::max(best, table[i * n + j - 1]);
      if (i < n - 1) best = std::max(best, table[(i + 1) * n + j]);
      if (j >= 1 && i < n - 1) {
        const double diag = table[(i + 1) * n + j - 1];
        best = std::max(best, i < j - 1 ? diag + match(i, j) : diag);
      }
      for (std::size_t k = i + 1; k < j; ++k)
        best = std::max(best, table[i * n + k] + table[(k + 1) * n + j]);
      table[i * n + j] = best;
    }
  }
  return checksum(table);
}

double run_seidel_2d(std::size_t n) {
  SOCRATES_REQUIRE(n >= 4);
  const std::size_t tsteps = std::max<std::size_t>(2, n / 16);
  Matrix a(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = (static_cast<double>(i) * (j + 2) + 2.0) / static_cast<double>(n);

  for (std::size_t t = 0; t < tsteps; ++t)
    for (std::size_t i = 1; i < n - 1; ++i)
      for (std::size_t j = 1; j < n - 1; ++j)
        a[i * n + j] =
            (a[(i - 1) * n + j - 1] + a[(i - 1) * n + j] + a[(i - 1) * n + j + 1] +
             a[i * n + j - 1] + a[i * n + j] + a[i * n + j + 1] +
             a[(i + 1) * n + j - 1] + a[(i + 1) * n + j] + a[(i + 1) * n + j + 1]) /
            9.0;
  return checksum(a);
}

double run_syr2k(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t m = n - n / 6;
  const double alpha = 1.5, beta = 1.2;
  Matrix a(n * m), b(n * m), c(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      a[i * m + j] = static_cast<double>((i * j + 1) % n) / static_cast<double>(n);
      b[i * m + j] = static_cast<double>((i * j + 2) % m) / static_cast<double>(m);
    }
    for (std::size_t j = 0; j < n; ++j)
      c[i * n + j] = static_cast<double>((i * j + 3) % n) / static_cast<double>(m);
  }

#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) c[i * n + j] *= beta;
    for (std::size_t k = 0; k < m; ++k)
      for (std::size_t j = 0; j <= i; ++j)
        c[i * n + j] += a[j * m + k] * alpha * b[i * m + k] +
                        b[j * m + k] * alpha * a[i * m + k];
  }
  return checksum(c);
}

double run_syrk(std::size_t n) {
  SOCRATES_REQUIRE(n >= 2);
  const std::size_t m = n - n / 6;
  const double alpha = 1.5, beta = 1.2;
  Matrix a(n * m), c(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j)
      a[i * m + j] = static_cast<double>((i * j + 1) % n) / static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j)
      c[i * n + j] = static_cast<double>((i * j + 2) % m) / static_cast<double>(m);
  }

#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) c[i * n + j] *= beta;
    for (std::size_t k = 0; k < m; ++k)
      for (std::size_t j = 0; j <= i; ++j)
        c[i * n + j] += alpha * a[i * m + k] * a[j * m + k];
  }
  return checksum(c);
}

}  // namespace socrates::kernels
