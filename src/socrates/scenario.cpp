#include "socrates/scenario.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/log.hpp"

namespace socrates {

Scenario& Scenario::at(double at_s, std::string description, Action action) {
  SOCRATES_REQUIRE(at_s >= 0.0);
  SOCRATES_REQUIRE(action != nullptr);
  events_.push_back(Event{at_s, std::move(description), std::move(action)});
  return *this;
}

std::vector<TraceSample> Scenario::run(AdaptiveApplication& app,
                                       double duration_s) const {
  SOCRATES_REQUIRE(duration_s > 0.0);

  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->at_s < b->at_s; });

  fired_.clear();
  const double start = app.now_s();
  std::vector<TraceSample> trace;
  for (const Event* event : ordered) {
    if (event->at_s >= duration_s) break;
    app.run_until(start + event->at_s, trace);
    log_info() << "scenario event at " << event->at_s << "s: " << event->description;
    event->action(app);
    fired_.push_back(event->description);
  }
  app.run_until(start + duration_s, trace);
  return trace;
}

}  // namespace socrates
