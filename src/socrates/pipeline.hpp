// The staged toolchain pipeline.
//
// Pipeline decomposes the Figure 1 flow into named stages — Parse,
// Features, CobaynPredict, Dse, Prune (optional), Weave, Knowledge —
// executed by a
// deterministic TaskPool and backed by a content-keyed ArtifactCache.
// The two expensive products (the trained COBAYN model and a profiled
// design space) are stored under keys derived from every input that can
// change them, so a second build with the same inputs — in the same
// process or, with $SOCRATES_CACHE_DIR, in a later one — reloads the
// artifact instead of recomputing it.  docs/PIPELINE.md documents the
// stage graph, the key recipes and the determinism contract.
//
// Toolchain (toolchain.hpp) remains as a thin facade over this class.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "dse/dse.hpp"
#include "dse/explorer.hpp"
#include "features/features.hpp"
#include "margot/operating_point.hpp"
#include "platform/perf_model.hpp"
#include "support/artifact_cache.hpp"
#include "support/supervisor.hpp"
#include "support/task_pool.hpp"
#include "weaver/report.hpp"

namespace socrates {

struct ToolchainOptions {
  std::size_t corpus_size = 48;     ///< synthetic kernels for COBAYN training
  std::uint64_t seed = 2018;        ///< master seed (DATE'18 vintage)
  std::size_t custom_configs = 4;   ///< how many CFs COBAYN suggests
  std::size_t dse_repetitions = 5;  ///< profiling runs per design point
  /// Use the paper's published CF1-CF4 instead of the trained model's
  /// predictions (the figure benches do, for comparability).
  bool use_paper_cfs = false;
  double work_scale = 1.0;          ///< dataset scale for profiling
  /// Parallel jobs for DSE / corpus work; 0 = TaskPool::default_jobs()
  /// (the SOCRATES_JOBS environment variable, else the hardware).
  /// Results are identical at any value.
  std::size_t jobs = 0;
  /// Retry/timeout/backoff policy every stage runs under (see
  /// support/supervisor.hpp).  The defaults retry transient failures
  /// twice with no deadline and no backoff sleep.
  SupervisorPolicy supervisor;
  /// Tries per DSE design point before the point is dropped from the
  /// profile (reduced coverage instead of an aborted campaign).
  std::size_t dse_point_attempts = 2;
  /// DSE strategy + budget knobs (the SOCRATES_DSE* family; defaults
  /// reproduce the paper: full factorial, no pruning).  When
  /// max_representatives > 0 the pipeline inserts a Prune stage that
  /// clusters the explored Pareto front and the weaver emits only the
  /// pruned clone set (docs/DSE.md).
  dse::DseStrategyOptions dse = dse::DseStrategyOptions::from_env();
};

/// Everything the toolchain produced for one benchmark.
struct AdaptiveBinary {
  std::string benchmark;
  features::FeatureVector kernel_features;
  std::vector<platform::NamedConfig> custom_configs;  ///< CF1..CFn
  weaver::WovenBenchmark woven;
  dse::DesignSpace space;
  std::vector<dse::ProfiledPoint> profile;
  margot::KnowledgeBase knowledge;
  /// Indices (into `profile`) of the representative points the clone
  /// set and knowledge base were pruned to; empty when pruning is off
  /// (the knowledge base then covers the whole profile).
  std::vector<std::size_t> representatives;
};

/// One executed pipeline stage.
struct StageReport {
  std::string name;  ///< Parse, Features, CobaynPredict, Dse, Prune, Weave, Knowledge
  bool cache_hit = false;  ///< product served from the artifact cache
  double seconds = 0.0;    ///< wall-clock time of the stage (incl. retries)
  std::size_t attempts = 1;        ///< supervisor attempts the stage took
  bool fallback = false;           ///< degraded product was substituted
  std::size_t dropped_points = 0;  ///< Dse only: points lost to faults
  std::string note;  ///< why the stage degraded ("" on a clean run)

  bool degraded() const { return fallback || dropped_points > 0; }
};

struct PipelineReport {
  std::vector<StageReport> stages;

  double total_seconds() const;
  /// Last stage with this name, nullptr when absent.
  const StageReport* stage(std::string_view name) const;
};

/// Stage implementation versions.  Bump one when the corresponding
/// stage changes behaviour: the key changes, so previously stored
/// artifacts are invalidated instead of silently reused.
inline constexpr std::uint64_t kCobaynStageVersion = 1;
/// v2: the Dse stage runs a pluggable Explorer; keys gained the
/// strategy fingerprint and old full-factorial artifacts were retired.
inline constexpr std::uint64_t kDseStageVersion = 2;

/// Fingerprint of the performance model (topology, power constants,
/// noise magnitudes).  Two platforms that would measure differently
/// never share cached artifacts.
std::uint64_t platform_signature(const platform::PerformanceModel& platform);

/// Artifact key of the trained COBAYN model.
std::uint64_t cobayn_artifact_key(const platform::PerformanceModel& platform,
                                  std::size_t corpus_size, std::uint64_t seed,
                                  const cobayn::TrainOptions& train,
                                  std::uint64_t stage_version = kCobaynStageVersion);

/// Artifact key of a profiled design space (full-factorial recipe —
/// profile_space() and the figure benches use it).
std::uint64_t dse_artifact_key(const platform::PerformanceModel& platform,
                               const std::string& source,
                               const platform::KernelModelParams& params,
                               const dse::DesignSpace& space, std::size_t repetitions,
                               std::uint64_t seed, double work_scale,
                               std::uint64_t stage_version = kDseStageVersion);

/// Explorer-aware key: the base recipe plus the strategy fingerprint
/// (Explorer::add_to_key), so two strategies — or two budgets of one
/// strategy — never share a stored profile.
std::uint64_t dse_artifact_key(const platform::PerformanceModel& platform,
                               const std::string& source,
                               const platform::KernelModelParams& params,
                               const dse::DesignSpace& space, std::size_t repetitions,
                               std::uint64_t seed, double work_scale,
                               const dse::Explorer& explorer,
                               std::uint64_t stage_version = kDseStageVersion);

class Pipeline {
 public:
  /// `cache` == nullptr uses ArtifactCache::global().
  explicit Pipeline(const platform::PerformanceModel& platform,
                    ToolchainOptions options = {}, ArtifactCache* cache = nullptr);

  const ToolchainOptions& options() const { return options_; }
  const platform::PerformanceModel& platform() const { return platform_; }
  TaskPool& pool() { return pool_; }
  ArtifactCache& cache() { return *cache_; }

  /// The COBAYN model: loaded from the artifact cache when a matching
  /// artifact exists, trained (and stored) otherwise.
  const cobayn::CobaynModel& cobayn_model();
  /// Const access; throws unless the model is already available.
  const cobayn::CobaynModel& cobayn_model() const;
  bool cobayn_ready() const { return !cobayn_.empty(); }

  /// Runs all stages for one registered Polybench benchmark.
  /// `work_scale_override` (> 0) profiles the DSE at a different
  /// dataset scale than options().work_scale.
  AdaptiveBinary build(const std::string& benchmark_name,
                       double work_scale_override = 0.0);

  /// Runs all stages on an arbitrary C source (any file with a kernel_*
  /// function); the kernel's platform behaviour is estimated from its
  /// static features, with `seq_work_s` as the sequential baseline.
  AdaptiveBinary build_from_source(const std::string& name, const std::string& source,
                                   double seq_work_s = 5.0);

  /// Dse stage only: profiles `space` for a registered benchmark
  /// through the artifact cache (the figure benches sweep design
  /// spaces directly).  Appends a Dse entry to last_report().
  std::vector<dse::ProfiledPoint> profile_space(const std::string& benchmark_name,
                                                const dse::DesignSpace& space,
                                                std::size_t repetitions,
                                                std::uint64_t seed,
                                                double work_scale = 1.0);

  /// Weave stage only (the Table I experiment).
  weaver::WovenBenchmark weave(const std::string& benchmark_name);

  /// Stage reports of the most recent build() / build_from_source()
  /// (standalone profile_space()/weave() calls append to it).
  const PipelineReport& last_report() const { return report_; }

  /// The supervisor every stage runs under (policy from options()).
  Supervisor& supervisor() { return supervisor_; }

 private:
  AdaptiveBinary build_impl(const std::string& name, const std::string& source,
                            const platform::KernelModelParams& params,
                            double work_scale);
  /// Trains or cache-loads the model; true when it came from the cache.
  bool ensure_cobayn();
  /// Cache-through factorial profiling with per-point fault tolerance.
  struct ProfileResult {
    std::vector<dse::ProfiledPoint> points;
    bool cache_hit = false;
    std::size_t dropped = 0;  ///< points lost to faults (degraded coverage)
  };
  ProfileResult profile_cached(const std::string& source,
                               const platform::KernelModelParams& params,
                               const dse::DesignSpace& space, std::size_t repetitions,
                               std::uint64_t seed, double work_scale);
  /// Cache-through exploration with the configured strategy (build's
  /// Dse stage).  `evaluated` counts unique points the strategy spent
  /// budget on (points.size() on a cache hit).
  struct ExploreCacheResult {
    std::vector<dse::ProfiledPoint> points;
    bool cache_hit = false;
    std::size_t dropped = 0;
    std::size_t evaluated = 0;
  };
  ExploreCacheResult explore_cached(const std::string& source,
                                    const platform::KernelModelParams& params,
                                    const dse::DesignSpace& space,
                                    std::size_t repetitions, std::uint64_t seed,
                                    double work_scale, const dse::Explorer& explorer);

  const platform::PerformanceModel& platform_;
  ToolchainOptions options_;
  ArtifactCache* cache_;
  TaskPool pool_;
  Supervisor supervisor_;
  std::vector<cobayn::CobaynModel> cobayn_;  ///< 0 or 1 element (late init)
  bool cobayn_from_cache_ = false;
  PipelineReport report_;
};

}  // namespace socrates
