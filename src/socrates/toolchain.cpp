#include "socrates/toolchain.hpp"

#include "features/params_from_features.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace socrates {

Toolchain::Toolchain(const platform::PerformanceModel& platform, ToolchainOptions options)
    : platform_(platform), options_(options) {
  SOCRATES_REQUIRE(options_.custom_configs >= 1);
  SOCRATES_REQUIRE(options_.dse_repetitions >= 1);
}

void Toolchain::train_cobayn() {
  if (!cobayn_.empty()) return;
  log_info() << "training COBAYN on " << options_.corpus_size << " synthetic kernels";
  const auto corpus = cobayn::make_corpus(options_.corpus_size, options_.seed);
  cobayn_.push_back(cobayn::CobaynModel::train(corpus, platform_));
}

const cobayn::CobaynModel& Toolchain::cobayn_model() const {
  SOCRATES_REQUIRE_MSG(!cobayn_.empty(), "COBAYN model not trained yet");
  return cobayn_.front();
}

AdaptiveBinary Toolchain::build(const std::string& benchmark_name,
                                double work_scale_override) {
  SOCRATES_REQUIRE(work_scale_override >= 0.0);
  const double work_scale =
      work_scale_override > 0.0 ? work_scale_override : options_.work_scale;
  const auto& bench = kernels::find_benchmark(benchmark_name);
  return build_impl(benchmark_name, kernels::benchmark_source(benchmark_name),
                    bench.model, work_scale);
}

AdaptiveBinary Toolchain::build_from_source(const std::string& name,
                                            const std::string& source,
                                            double seq_work_s) {
  const auto features = cobayn::kernel_features_of_source(source);
  const auto params = features::estimate_model_params(features, name, seq_work_s);
  return build_impl(name, source, params, options_.work_scale);
}

AdaptiveBinary Toolchain::build_impl(const std::string& name, const std::string& source,
                                     const platform::KernelModelParams& params,
                                     double work_scale) {
  train_cobayn();

  AdaptiveBinary out{name,
                     {},
                     {},
                     {},
                     {},
                     {},
                     margot::KnowledgeBase({"config", "threads", "binding"},
                                           {"exec_time_s", "power_w", "throughput"})};

  // 1. Static features (GCC-Milepost stage).
  out.kernel_features = cobayn::kernel_features_of_source(source);

  // 2. Compiler-space pruning (COBAYN stage).
  out.custom_configs =
      options_.use_paper_cfs
          ? platform::paper_custom_configs()
          : cobayn_model().predict_named(out.kernel_features, options_.custom_configs);

  // Reduced design space: the 4 standard levels + the CFs.
  std::vector<platform::NamedConfig> configs = platform::standard_levels();
  for (const auto& cf : out.custom_configs) configs.push_back(cf);

  // 3. Weaving (LARA/MANET stage).
  const std::vector<platform::BindingPolicy> bindings = {
      platform::BindingPolicy::kClose, platform::BindingPolicy::kSpread};
  out.woven = weaver::weave_benchmark(name, source, configs, bindings);

  // 4. Design-space exploration (mARGOt profiling task).
  out.space = dse::DesignSpace{configs, {}, bindings};
  for (std::size_t t = 1; t <= platform_.topology().logical_cores(); ++t)
    out.space.thread_counts.push_back(t);
  out.profile = dse::full_factorial_dse(platform_, params, out.space,
                                        options_.dse_repetitions, options_.seed + 17,
                                        work_scale);

  // 5. Application knowledge for the AS-RTM.
  out.knowledge = dse::to_knowledge_base(out.profile);

  log_info() << "built adaptive binary for " << name << ": " << out.profile.size()
             << " operating points, " << out.woven.report.weaved_loc << " weaved LOC";
  return out;
}

}  // namespace socrates
