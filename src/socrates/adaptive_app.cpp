#include "socrates/adaptive_app.hpp"

#include "kernels/registry.hpp"
#include "support/error.hpp"

namespace socrates {

AdaptiveApplication::AdaptiveApplication(AdaptiveBinary binary,
                                         const platform::PerformanceModel& platform,
                                         double work_scale, std::uint64_t noise_seed)
    : binary_(std::move(binary)),
      executor_(platform, kernels::find_benchmark(binary_.benchmark).model, work_scale,
                noise_seed),
      context_(binary_.knowledge, executor_.clock(), executor_.rapl()) {}

TraceSample AdaptiveApplication::run_iteration() {
  TraceSample sample;
  sample.configuration_changed = context_.update(knobs_);

  const platform::Configuration config = dse::decode_knobs(binary_.space, knobs_);

  context_.start_monitors();
  const platform::Measurement m = executor_.run(config);
  context_.stop_monitors();

  sample.timestamp_s = executor_.clock().now_s();
  sample.exec_time_s = m.exec_time_s;
  sample.power_w = m.avg_power_w;
  sample.config_name = binary_.space.configs[static_cast<std::size_t>(knobs_[0])].name;
  sample.threads = config.threads;
  sample.binding = config.binding;
  return sample;
}

void AdaptiveApplication::run_until(double until_s, std::vector<TraceSample>& trace) {
  SOCRATES_REQUIRE(until_s >= now_s());
  while (now_s() < until_s) trace.push_back(run_iteration());
}

}  // namespace socrates
