#include "socrates/adaptive_app.hpp"

#include "kernels/registry.hpp"
#include "support/error.hpp"

namespace socrates {

namespace {

/// The monitor's view of the last region: the accepted observation, or
/// the window's robust center when the sample was rejected (the best
/// estimate a hardened stack can report).
double observed_value(const margot::RegionMonitorBase& monitor) {
  if (!monitor.last_rejected()) return monitor.last_observation();
  return monitor.stats().empty() ? 0.0 : monitor.stats().median();
}

}  // namespace

AdaptiveApplication::AdaptiveApplication(AdaptiveBinary binary,
                                         const platform::PerformanceModel& platform,
                                         double work_scale, std::uint64_t noise_seed)
    : binary_(std::move(binary)),
      executor_(platform, kernels::find_benchmark(binary_.benchmark).model, work_scale,
                noise_seed),
      context_(binary_.knowledge, executor_.sensor_clock(), executor_.sensor_counter()) {}

TraceSample AdaptiveApplication::run_iteration() {
  TraceSample sample;
  sample.configuration_changed = context_.update(knobs_);

  const platform::Configuration config = dse::decode_knobs(binary_.space, knobs_);
  sample.config_name = binary_.space.configs[static_cast<std::size_t>(knobs_[0])].name;
  sample.threads = config.threads;
  sample.binding = config.binding;

  context_.start_monitors();
  platform::Measurement m;
  try {
    m = executor_.run(config);
  } catch (const platform::VariantCrash&) {
    context_.cancel_monitors();
    context_.report_variant_crash();
    sample.crashed = true;
    sample.timestamp_s = executor_.clock().now_s();
    return sample;
  }
  context_.stop_monitors();

  sample.timestamp_s = executor_.clock().now_s();
  sample.exec_time_s = m.exec_time_s;
  sample.power_w = m.avg_power_w;
  sample.observed_time_s = observed_value(context_.time_monitor());
  sample.observed_power_w = observed_value(context_.power_monitor());
  sample.observed_energy_j = observed_value(context_.energy_monitor());
  sample.sample_rejected = context_.time_monitor().last_rejected() ||
                           context_.power_monitor().last_rejected() ||
                           context_.energy_monitor().last_rejected();
  return sample;
}

void AdaptiveApplication::run_until(double until_s, std::vector<TraceSample>& trace) {
  SOCRATES_REQUIRE(until_s >= now_s());
  while (now_s() < until_s) trace.push_back(run_iteration());
}

}  // namespace socrates
