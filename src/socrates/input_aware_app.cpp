#include "socrates/input_aware_app.hpp"

#include "kernels/registry.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace socrates {

InputAwareBinary build_input_aware(Pipeline& pipeline, const std::string& benchmark,
                                   const std::vector<double>& scales) {
  SOCRATES_REQUIRE(!scales.empty());
  for (const double s : scales) SOCRATES_REQUIRE(s > 0.0 && s <= 1.0);

  margot::DataFeatureSchema schema;
  schema.names = {"dataset_scale"};
  schema.comparisons = {margot::FeatureComparison::kDontCare};

  InputAwareBinary out{benchmark, {}, margot::MultiKnowledge(schema), scales};

  // One DSE per representative input; the knob space is identical
  // across clusters (same kernel versions in the woven binary), only
  // the profiled behaviour differs.
  for (const double scale : scales) {
    auto binary = pipeline.build(benchmark, scale);
    if (out.space.configs.empty()) out.space = binary.space;
    out.knowledge.add_cluster({scale}, std::move(binary.knowledge));
  }
  log_info() << "input-aware binary for " << benchmark << ": " << scales.size()
             << " knowledge clusters";
  return out;
}

InputAwareApplication::InputAwareApplication(InputAwareBinary binary,
                                             const platform::PerformanceModel& platform,
                                             std::uint64_t noise_seed)
    : binary_(std::move(binary)),
      executor_(platform, kernels::find_benchmark(binary_.benchmark).model,
                /*work_scale=*/1.0, noise_seed) {
  SOCRATES_REQUIRE(binary_.knowledge.cluster_count() >= 1);
  contexts_.reserve(binary_.knowledge.cluster_count());
  for (std::size_t i = 0; i < binary_.knowledge.cluster_count(); ++i) {
    contexts_.push_back(std::make_unique<margot::Context>(
        binary_.knowledge.cluster(i).knowledge, executor_.sensor_clock(),
        executor_.sensor_counter()));
  }
}

bool InputAwareApplication::set_input(double scale) {
  SOCRATES_REQUIRE(scale > 0.0);
  const std::size_t chosen = binary_.knowledge.select({scale});
  executor_.set_work_scale(scale);
  current_scale_ = scale;
  const bool changed = !input_set_ || chosen != active_;
  active_ = chosen;
  input_set_ = true;
  return changed;
}

void InputAwareApplication::set_rank_all(const margot::Rank& rank) {
  for (auto& ctx : contexts_) ctx->asrtm().set_rank(rank);
}

void InputAwareApplication::add_constraint_all(const margot::Constraint& constraint) {
  for (auto& ctx : contexts_) ctx->asrtm().add_constraint(constraint);
}

std::size_t InputAwareApplication::active_cluster() const {
  SOCRATES_REQUIRE_MSG(input_set_, "set_input() has not been called yet");
  return active_;
}

TraceSample InputAwareApplication::run_iteration() {
  SOCRATES_REQUIRE_MSG(input_set_, "set_input() has not been called yet");
  margot::Context& ctx = *contexts_[active_];

  TraceSample sample;
  sample.configuration_changed = ctx.update(knobs_);
  const platform::Configuration config = dse::decode_knobs(binary_.space, knobs_);

  ctx.start_monitors();
  const platform::Measurement m = executor_.run(config);
  ctx.stop_monitors();

  sample.timestamp_s = executor_.clock().now_s();
  sample.exec_time_s = m.exec_time_s;
  sample.power_w = m.avg_power_w;
  sample.config_name = binary_.space.configs[static_cast<std::size_t>(knobs_[0])].name;
  sample.threads = config.threads;
  sample.binding = config.binding;
  return sample;
}

}  // namespace socrates
