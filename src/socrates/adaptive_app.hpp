// The adaptive application at runtime.
//
// Drives a woven, knowledge-equipped benchmark the way the generated
// binary of Figure 2c runs: every iteration performs
//     margot_update(...)        -> AS-RTM picks the operating point
//     margot_start_monitors()
//     kernel_wrapper(...)        -> the chosen clone executes
//     margot_stop_monitors()     -> EFP feedback flows back
// against the simulated machine (virtual clock + simulated RAPL).
// Application requirements can change while the app runs — Figure 5
// switches the rank from Throughput/Watt^2 to Throughput and back —
// and the recorded trace exposes the selected knobs over time.
//
// The machine under the application can also be *hostile*: a
// platform::FaultSchedule injects sensor faults into the clock/counter
// the monitors read and makes selected clones crash or return garbage.
// A crashing invocation is caught here — the monitors are cancelled,
// the crash lands in the trace and (when quarantine is enabled) in the
// AS-RTM's health bookkeeping.  harden() turns on every defense layer;
// see docs/ROBUSTNESS.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/context.hpp"
#include "platform/executor.hpp"
#include "socrates/toolchain.hpp"

namespace socrates {

/// One kernel invocation in the trace.
struct TraceSample {
  double timestamp_s = 0.0;      ///< simulated time at iteration end
  double exec_time_s = 0.0;      ///< true kernel time (model ground truth)
  double power_w = 0.0;          ///< true average power (model ground truth)
  /// What the monitors *observed* through the (possibly faulty) sensor
  /// path; under hardening these are the corrected / best-estimate
  /// values, never negative or non-finite.
  double observed_time_s = 0.0;
  double observed_power_w = 0.0;
  double observed_energy_j = 0.0;
  std::string config_name;       ///< selected compiler configuration
  std::size_t threads = 0;       ///< selected OpenMP thread count
  platform::BindingPolicy binding = platform::BindingPolicy::kClose;
  bool configuration_changed = false;
  bool crashed = false;          ///< the clone died; no measurement recorded
  bool sample_rejected = false;  ///< a hardened monitor rejected its sample
};

class AdaptiveApplication {
 public:
  /// `binary` is moved in; `platform` must outlive the application.
  AdaptiveApplication(AdaptiveBinary binary, const platform::PerformanceModel& platform,
                      double work_scale = 1.0, std::uint64_t noise_seed = 7);

  /// The mARGOt context (to set goals, constraints and ranks).
  margot::Context& margot() { return context_; }
  margot::Asrtm& asrtm() { return context_.asrtm(); }

  /// Simulated time since the application started.
  double now_s() const { return executor_.clock().now_s(); }

  /// Runs one update/start/kernel/stop iteration; returns the sample.
  /// A clone crash is absorbed: the sample reports crashed=true.
  TraceSample run_iteration();

  /// Runs iterations until `now_s() >= until_s`; samples are appended
  /// to `trace`.
  void run_until(double until_s, std::vector<TraceSample>& trace);

  /// Installs external-load episodes on the underlying machine (see
  /// platform::DisturbanceSchedule).  The AS-RTM is not told — it must
  /// react through monitor feedback.
  void set_disturbances(platform::DisturbanceSchedule schedule) {
    executor_.set_disturbances(std::move(schedule));
  }

  /// Installs sensor / variant faults (platform::FaultSchedule).  Like
  /// disturbances, only their effects are visible to the runtime.
  void set_faults(platform::FaultSchedule schedule) {
    executor_.set_faults(std::move(schedule));
  }

  /// Enables every fault-tolerance layer (hardened monitors, outlier
  /// filter, quarantine, oscillation watchdog).
  void harden() { context_.set_robustness(margot::RobustnessOptions::hardened()); }

  /// Reconfigures the defenses individually.
  void set_robustness(const margot::RobustnessOptions& options) {
    context_.set_robustness(options);
  }

  const AdaptiveBinary& binary() const { return binary_; }

 private:
  AdaptiveBinary binary_;
  platform::KernelExecutor executor_;
  margot::Context context_;
  std::vector<int> knobs_{0, 0, 0};
};

}  // namespace socrates
