// The adaptive application at runtime.
//
// Drives a woven, knowledge-equipped benchmark the way the generated
// binary of Figure 2c runs: every iteration performs
//     margot_update(...)        -> AS-RTM picks the operating point
//     margot_start_monitors()
//     kernel_wrapper(...)        -> the chosen clone executes
//     margot_stop_monitors()     -> EFP feedback flows back
// against the simulated machine (virtual clock + simulated RAPL).
// Application requirements can change while the app runs — Figure 5
// switches the rank from Throughput/Watt^2 to Throughput and back —
// and the recorded trace exposes the selected knobs over time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "margot/context.hpp"
#include "platform/executor.hpp"
#include "socrates/toolchain.hpp"

namespace socrates {

/// One kernel invocation in the trace.
struct TraceSample {
  double timestamp_s = 0.0;      ///< simulated time at iteration end
  double exec_time_s = 0.0;      ///< observed kernel time
  double power_w = 0.0;          ///< observed average power
  std::string config_name;       ///< selected compiler configuration
  std::size_t threads = 0;       ///< selected OpenMP thread count
  platform::BindingPolicy binding = platform::BindingPolicy::kClose;
  bool configuration_changed = false;
};

class AdaptiveApplication {
 public:
  /// `binary` is moved in; `platform` must outlive the application.
  AdaptiveApplication(AdaptiveBinary binary, const platform::PerformanceModel& platform,
                      double work_scale = 1.0, std::uint64_t noise_seed = 7);

  /// The mARGOt context (to set goals, constraints and ranks).
  margot::Context& margot() { return context_; }
  margot::Asrtm& asrtm() { return context_.asrtm(); }

  /// Simulated time since the application started.
  double now_s() const { return executor_.clock().now_s(); }

  /// Runs one update/start/kernel/stop iteration; returns the sample.
  TraceSample run_iteration();

  /// Runs iterations until `now_s() >= until_s`; samples are appended
  /// to `trace`.
  void run_until(double until_s, std::vector<TraceSample>& trace);

  /// Installs external-load episodes on the underlying machine (see
  /// platform::DisturbanceSchedule).  The AS-RTM is not told — it must
  /// react through monitor feedback.
  void set_disturbances(platform::DisturbanceSchedule schedule) {
    executor_.set_disturbances(std::move(schedule));
  }

  const AdaptiveBinary& binary() const { return binary_; }

 private:
  AdaptiveBinary binary_;
  platform::KernelExecutor executor_;
  margot::Context context_;
  std::vector<int> knobs_{0, 0, 0};
};

}  // namespace socrates
