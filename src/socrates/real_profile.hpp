// Real-execution profiling.
//
// Everything else in the evaluation pipeline runs on the platform
// model, but the 12 kernels are real code (src/kernels), so the same
// monitor stack can measure them for real: wall time through a mARGOt
// TimeMonitor on the steady clock, and — when the host exposes RAPL —
// Joules through an EnergyMonitor on the sysfs counter.  On hosts
// without RAPL (like this build container) the energy fields report
// `energy_available == false` instead of fabricating numbers.
// This is the adoption path for running SOCRATES on real hardware:
// swap full_factorial_dse's model evaluation for this profiler.
#pragma once

#include <cstddef>
#include <string>

namespace socrates {

struct RealMeasurement {
  std::string benchmark;
  std::size_t problem_size = 0;
  std::size_t repetitions = 0;
  double exec_time_mean_s = 0.0;
  double exec_time_stddev_s = 0.0;
  double exec_time_min_s = 0.0;
  double checksum = 0.0;          ///< output checksum (determinism witness)
  bool energy_available = false;  ///< true only with a real RAPL backend
  double energy_mean_j = 0.0;
  double avg_power_w = 0.0;
  std::string energy_backend;     ///< "rapl-sysfs" or "simulated"
};

/// Runs the real kernel `repetitions` times at `problem_size` (after
/// one untimed warm-up run) and reports wall-clock statistics.
/// Preconditions: a registered benchmark name, repetitions >= 1.
RealMeasurement profile_real_kernel(const std::string& benchmark,
                                    std::size_t problem_size,
                                    std::size_t repetitions);

}  // namespace socrates
