// Scripted runtime scenarios.
//
// The paper's runtime experiments are schedules: "switch the policy at
// 100 s and 200 s" (Figure 5), "change the power cap every 60 s"
// (the power-capped-server use case).  Scenario captures that shape
// declaratively: time-ordered events fired against the adaptive
// application while it runs, with the trace collected in between.
// Events see the application, so they can switch mARGOt states, move
// constraint goals, change the input, or anything else the runtime API
// allows.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "socrates/adaptive_app.hpp"

namespace socrates {

class Scenario {
 public:
  using Action = std::function<void(AdaptiveApplication&)>;

  /// Schedules `action` at simulated time `at_s` (relative to the run's
  /// start).  Events may be added in any order; run() sorts them.
  /// Returns *this for chaining.
  Scenario& at(double at_s, std::string description, Action action);

  std::size_t event_count() const { return events_.size(); }

  /// Runs `app` until `duration_s` (relative to the app's current
  /// time), firing each event when the simulated clock first reaches
  /// its timestamp.  Returns the collected trace.  Events scheduled at
  /// or beyond `duration_s` do not fire.
  std::vector<TraceSample> run(AdaptiveApplication& app, double duration_s) const;

  /// Descriptions of the events that fired in the last run(), in order.
  const std::vector<std::string>& fired() const { return fired_; }

 private:
  struct Event {
    double at_s = 0.0;
    std::string description;
    Action action;
  };

  std::vector<Event> events_;
  mutable std::vector<std::string> fired_;
};

}  // namespace socrates
