// The SOCRATES toolchain (Figure 1 of the paper).
//
// End-to-end flow from an original benchmark source to the adaptive
// application:
//   1. parse the source and extract Milepost-style static features of
//      every kernel (GCC-Milepost stage);
//   2. query the trained COBAYN model for the most promising custom
//      flag configurations (CF1..CFn), pruning the 128-point compiler
//      space to the reduced design space (standard levels + CFs);
//   3. weave the application: Multiversioning + Autotuner LARA
//      strategies generate the tunable, mARGOt-enabled source;
//   4. profile the full factorial design space (DSE) into the
//      application knowledge;
//   5. hand the knowledge to the AS-RTM — the adaptive binary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "dse/dse.hpp"
#include "features/features.hpp"
#include "margot/operating_point.hpp"
#include "platform/perf_model.hpp"
#include "weaver/report.hpp"

namespace socrates {

struct ToolchainOptions {
  std::size_t corpus_size = 48;     ///< synthetic kernels for COBAYN training
  std::uint64_t seed = 2018;        ///< master seed (DATE'18 vintage)
  std::size_t custom_configs = 4;   ///< how many CFs COBAYN suggests
  std::size_t dse_repetitions = 5;  ///< profiling runs per design point
  /// Use the paper's published CF1-CF4 instead of the trained model's
  /// predictions (the figure benches do, for comparability).
  bool use_paper_cfs = false;
  double work_scale = 1.0;          ///< dataset scale for profiling
};

/// Everything the toolchain produced for one benchmark.
struct AdaptiveBinary {
  std::string benchmark;
  features::FeatureVector kernel_features;
  std::vector<platform::NamedConfig> custom_configs;  ///< CF1..CFn
  weaver::WovenBenchmark woven;
  dse::DesignSpace space;
  std::vector<dse::ProfiledPoint> profile;
  margot::KnowledgeBase knowledge;
};

class Toolchain {
 public:
  Toolchain(const platform::PerformanceModel& platform, ToolchainOptions options = {});

  /// Trains COBAYN on the synthetic corpus.  Implicit on first build().
  void train_cobayn();
  bool cobayn_trained() const { return !cobayn_.empty(); }
  const cobayn::CobaynModel& cobayn_model() const;

  /// Runs the full flow for one registered Polybench benchmark.
  /// `work_scale_override` (> 0) profiles the DSE at a different
  /// dataset scale than options().work_scale — used by the input-aware
  /// builder to produce one knowledge cluster per representative input.
  AdaptiveBinary build(const std::string& benchmark_name,
                       double work_scale_override = 0.0);

  /// Runs the full flow on an *arbitrary* C source (any file with a
  /// kernel_* function and a main).  With no hand-calibrated model, the
  /// kernel's platform behaviour is estimated from its static features
  /// (features::estimate_model_params); `seq_work_s` supplies the
  /// sequential baseline time the estimator cannot infer statically.
  AdaptiveBinary build_from_source(const std::string& name, const std::string& source,
                                   double seq_work_s = 5.0);

  const ToolchainOptions& options() const { return options_; }

 private:
  AdaptiveBinary build_impl(const std::string& name, const std::string& source,
                            const platform::KernelModelParams& params,
                            double work_scale);

  const platform::PerformanceModel& platform_;
  ToolchainOptions options_;
  std::vector<cobayn::CobaynModel> cobayn_;  ///< 0 or 1 element (late init)
};

}  // namespace socrates
