// The SOCRATES toolchain (Figure 1 of the paper).
//
// End-to-end flow from an original benchmark source to the adaptive
// application:
//   1. parse the source and extract Milepost-style static features of
//      every kernel (GCC-Milepost stage);
//   2. query the trained COBAYN model for the most promising custom
//      flag configurations (CF1..CFn), pruning the 128-point compiler
//      space to the reduced design space (standard levels + CFs);
//   3. weave the application: Multiversioning + Autotuner LARA
//      strategies generate the tunable, mARGOt-enabled source;
//   4. profile the full factorial design space (DSE) into the
//      application knowledge;
//   5. hand the knowledge to the AS-RTM — the adaptive binary.
//
// Toolchain is a thin facade over Pipeline (pipeline.hpp), which runs
// the same flow as named, artifact-cached, task-pool-parallel stages.
#pragma once

#include <string>

#include "socrates/pipeline.hpp"

namespace socrates {

class Toolchain {
 public:
  Toolchain(const platform::PerformanceModel& platform, ToolchainOptions options = {})
      : pipeline_(platform, options) {}

  /// Trains COBAYN on the synthetic corpus (or loads the cached model
  /// artifact).  Implicit on first build().
  void train_cobayn() { pipeline_.cobayn_model(); }
  bool cobayn_trained() const { return pipeline_.cobayn_ready(); }
  const cobayn::CobaynModel& cobayn_model() const { return pipeline_.cobayn_model(); }

  /// Runs the full flow for one registered Polybench benchmark.
  /// `work_scale_override` (> 0) profiles the DSE at a different
  /// dataset scale than options().work_scale — used by the input-aware
  /// builder to produce one knowledge cluster per representative input.
  AdaptiveBinary build(const std::string& benchmark_name,
                       double work_scale_override = 0.0) {
    return pipeline_.build(benchmark_name, work_scale_override);
  }

  /// Runs the full flow on an *arbitrary* C source (any file with a
  /// kernel_* function and a main).  With no hand-calibrated model, the
  /// kernel's platform behaviour is estimated from its static features
  /// (features::estimate_model_params); `seq_work_s` supplies the
  /// sequential baseline time the estimator cannot infer statically.
  AdaptiveBinary build_from_source(const std::string& name, const std::string& source,
                                   double seq_work_s = 5.0) {
    return pipeline_.build_from_source(name, source, seq_work_s);
  }

  const ToolchainOptions& options() const { return pipeline_.options(); }

  /// The underlying staged pipeline (stage reports, cache, task pool).
  Pipeline& pipeline() { return pipeline_; }
  const Pipeline& pipeline() const { return pipeline_; }

 private:
  Pipeline pipeline_;
};

}  // namespace socrates
