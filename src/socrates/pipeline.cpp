#include "socrates/pipeline.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "dse/representative.hpp"
#include "dse/two_stage.hpp"
#include "features/params_from_features.hpp"
#include "ir/parser.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace socrates {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Times one pipeline stage: finish() records a "pipeline" trace span,
/// feeds the per-stage seconds histogram and returns the elapsed time
/// for the StageReport.  Explicit finish() (not RAII) because stages
/// run linearly in one scope and their spans must not nest.
class StageScope {
 public:
  explicit StageScope(const char* name)
      : name_(name),
        start_(Clock::now()),
        trace_start_us_(Tracer::global().enabled() ? Tracer::global().now_us()
                                                   : -1) {}

  double finish() const {
    const double seconds = seconds_since(start_);
    MetricsRegistry::global()
        .histogram(std::string("pipeline.stage_seconds.") + name_)
        .observe(seconds);
    if (trace_start_us_ >= 0) {
      TraceEvent event;
      event.name = name_;
      event.category = "pipeline";
      event.lane = Tracer::current_lane();
      event.start_us = trace_start_us_;
      event.duration_us = Tracer::global().now_us() - trace_start_us_;
      Tracer::global().record(event);
    }
    return seconds;
  }

 private:
  const char* name_;
  Clock::time_point start_;
  std::int64_t trace_start_us_;
};

void count_key_bytes(const Hasher& h) {
  static Counter& bytes =
      MetricsRegistry::global().counter("pipeline.key_bytes_hashed");
  bytes.add(h.bytes());
}

}  // namespace

double PipelineReport::total_seconds() const {
  double total = 0.0;
  for (const auto& s : stages) total += s.seconds;
  return total;
}

const StageReport* PipelineReport::stage(std::string_view name) const {
  for (std::size_t i = stages.size(); i-- > 0;)
    if (stages[i].name == name) return &stages[i];
  return nullptr;
}

std::uint64_t platform_signature(const platform::PerformanceModel& platform) {
  Hasher h;
  h.add("platform-signature");
  const auto& t = platform.topology();
  h.add(static_cast<std::uint64_t>(t.sockets));
  h.add(static_cast<std::uint64_t>(t.cores_per_socket));
  h.add(static_cast<std::uint64_t>(t.threads_per_core));
  const auto& m = platform.machine();
  h.add(m.idle_power_w).add(m.socket_active_w).add(m.core_dynamic_w);
  h.add(m.stall_power_share).add(m.ht_power_bonus).add(m.ht_throughput_gain);
  h.add(m.dram_w_per_gbs).add(m.turbo_headroom).add(m.turbo_power_exponent);
  h.add(m.core_bw_gbs).add(m.socket_bw_gbs).add(m.ht_bw_gain);
  h.add(platform.time_noise_sigma()).add(platform.power_noise_sigma());
  count_key_bytes(h);
  return h.digest();
}

std::uint64_t cobayn_artifact_key(const platform::PerformanceModel& platform,
                                  std::size_t corpus_size, std::uint64_t seed,
                                  const cobayn::TrainOptions& train,
                                  std::uint64_t stage_version) {
  Hasher h;
  h.add("cobayn-model");
  h.add(stage_version);
  h.add(platform_signature(platform));
  h.add(static_cast<std::uint64_t>(corpus_size));
  h.add(seed);
  h.add(static_cast<std::uint64_t>(train.feature_bins));
  h.add(train.good_share);
  h.add(static_cast<std::uint64_t>(train.profile_threads));
  h.add(static_cast<std::uint64_t>(train.k2.max_parents));
  h.add(train.k2.laplace_alpha);
  count_key_bytes(h);
  return h.digest();
}

std::uint64_t dse_artifact_key(const platform::PerformanceModel& platform,
                               const std::string& source,
                               const platform::KernelModelParams& params,
                               const dse::DesignSpace& space, std::size_t repetitions,
                               std::uint64_t seed, double work_scale,
                               std::uint64_t stage_version) {
  Hasher h;
  h.add("dse-profile");
  h.add(stage_version);
  h.add(platform_signature(platform));
  h.add(source);
  h.add(params.name).add(params.seq_work_s).add(params.parallel_fraction);
  h.add(params.mem_intensity).add(params.unroll_affinity);
  h.add(params.vectorization_affinity).add(params.fp_ratio).add(params.branchiness);
  h.add(params.call_density).add(params.icache_sensitivity);
  h.add(params.ivopt_sensitivity).add(params.loop_opt_sensitivity);
  h.add(static_cast<std::uint64_t>(space.configs.size()));
  for (const auto& c : space.configs) {
    h.add(c.name);
    h.add(static_cast<std::uint64_t>(c.config.level()));
    h.add(static_cast<std::uint64_t>(c.config.flag_bits()));
  }
  h.add(static_cast<std::uint64_t>(space.thread_counts.size()));
  for (const std::size_t t : space.thread_counts) h.add(static_cast<std::uint64_t>(t));
  h.add(static_cast<std::uint64_t>(space.bindings.size()));
  for (const auto b : space.bindings) h.add(static_cast<std::uint64_t>(b));
  h.add(static_cast<std::uint64_t>(repetitions));
  h.add(seed);
  h.add(work_scale);
  count_key_bytes(h);
  return h.digest();
}

std::uint64_t dse_artifact_key(const platform::PerformanceModel& platform,
                               const std::string& source,
                               const platform::KernelModelParams& params,
                               const dse::DesignSpace& space, std::size_t repetitions,
                               std::uint64_t seed, double work_scale,
                               const dse::Explorer& explorer,
                               std::uint64_t stage_version) {
  Hasher h;
  h.add(dse_artifact_key(platform, source, params, space, repetitions, seed,
                         work_scale, stage_version));
  explorer.add_to_key(h);
  count_key_bytes(h);
  return h.digest();
}

Pipeline::Pipeline(const platform::PerformanceModel& platform, ToolchainOptions options,
                   ArtifactCache* cache)
    : platform_(platform),
      options_(options),
      cache_(cache != nullptr ? cache : &ArtifactCache::global()),
      pool_(options.jobs),
      supervisor_(options.supervisor) {
  SOCRATES_REQUIRE(options_.custom_configs >= 1);
  SOCRATES_REQUIRE(options_.dse_repetitions >= 1);
  SOCRATES_REQUIRE(options_.dse_point_attempts >= 1);
}

bool Pipeline::ensure_cobayn() {
  if (!cobayn_.empty()) return true;  // computed once, reused in-process

  cobayn::TrainOptions train;
  train.pool = &pool_;
  const std::uint64_t key =
      cobayn_artifact_key(platform_, options_.corpus_size, options_.seed, train);
  if (auto payload = cache_->load(key, "cobayn-model")) {
    try {
      std::istringstream in(*payload);
      cobayn_.push_back(cobayn::CobaynModel::load(in));
      cobayn_from_cache_ = true;
      log_info() << "COBAYN model loaded from artifact cache";
      return true;
    } catch (const ContractViolation& e) {
      log_warn() << "stored COBAYN artifact unusable (" << e.what()
                 << "); retraining";
      cobayn_.clear();
    }
  }

  log_info() << "training COBAYN on " << options_.corpus_size << " synthetic kernels";
  const auto corpus = cobayn::make_corpus(options_.corpus_size, options_.seed);
  cobayn_.push_back(cobayn::CobaynModel::train(corpus, platform_, train));
  std::ostringstream out;
  cobayn_.front().save(out);
  cache_->store(key, "cobayn-model", out.str());
  cobayn_from_cache_ = false;
  return false;
}

const cobayn::CobaynModel& Pipeline::cobayn_model() {
  ensure_cobayn();
  return cobayn_.front();
}

const cobayn::CobaynModel& Pipeline::cobayn_model() const {
  SOCRATES_REQUIRE_MSG(!cobayn_.empty(), "COBAYN model not trained yet");
  return cobayn_.front();
}

Pipeline::ProfileResult Pipeline::profile_cached(
    const std::string& source, const platform::KernelModelParams& params,
    const dse::DesignSpace& space, std::size_t repetitions, std::uint64_t seed,
    double work_scale) {
  const std::uint64_t key = dse_artifact_key(platform_, source, params, space,
                                             repetitions, seed, work_scale);
  if (auto payload = cache_->load(key, "dse-profile")) {
    try {
      std::istringstream in(*payload);
      return {dse::load_profile(in), true, 0};
    } catch (const ContractViolation& e) {
      log_warn() << "stored DSE artifact unusable (" << e.what() << "); reprofiling";
    }
  }
  auto run = dse::supervised_dse(platform_, params, space, repetitions, seed,
                                 work_scale, &pool_, options_.dse_point_attempts);
  if (run.dropped == 0) {
    std::ostringstream out;
    dse::save_profile(out, run.points);
    cache_->store(key, "dse-profile", out.str());
  } else {
    // Never cache a degraded profile: a later chaos-free build must
    // recompute the full factorial, not inherit the holes.
    log_warn() << "DSE dropped " << run.dropped << " of " << space.size()
               << " design points; profile not cached";
  }
  return {std::move(run.points), false, run.dropped};
}

Pipeline::ExploreCacheResult Pipeline::explore_cached(
    const std::string& source, const platform::KernelModelParams& params,
    const dse::DesignSpace& space, std::size_t repetitions, std::uint64_t seed,
    double work_scale, const dse::Explorer& explorer) {
  const std::uint64_t key = dse_artifact_key(platform_, source, params, space,
                                             repetitions, seed, work_scale, explorer);
  if (auto payload = cache_->load(key, "dse-profile")) {
    try {
      std::istringstream in(*payload);
      ExploreCacheResult hit;
      hit.points = dse::load_profile(in);
      hit.cache_hit = true;
      hit.evaluated = hit.points.size();
      return hit;
    } catch (const ContractViolation& e) {
      log_warn() << "stored DSE artifact unusable (" << e.what() << "); re-exploring";
    }
  }
  dse::ExploreContext ctx{platform_, params,     space,  repetitions,
                          seed,      work_scale, &pool_, options_.dse_point_attempts};
  auto run = explorer.explore(ctx);
  if (run.dropped == 0) {
    std::ostringstream out;
    dse::save_profile(out, run.points);
    cache_->store(key, "dse-profile", out.str());
  } else {
    // Never cache a degraded profile: a later chaos-free build must
    // re-explore, not inherit the holes.
    log_warn() << "DSE (" << explorer.name() << ") dropped " << run.dropped << " of "
               << run.evaluated << " explored points; profile not cached";
  }
  ExploreCacheResult out;
  out.points = std::move(run.points);
  out.dropped = run.dropped;
  out.evaluated = run.evaluated;
  return out;
}

AdaptiveBinary Pipeline::build(const std::string& benchmark_name,
                               double work_scale_override) {
  SOCRATES_REQUIRE(work_scale_override >= 0.0);
  const double work_scale =
      work_scale_override > 0.0 ? work_scale_override : options_.work_scale;
  const auto& bench = kernels::find_benchmark(benchmark_name);
  return build_impl(benchmark_name, kernels::benchmark_source(benchmark_name),
                    bench.model, work_scale);
}

AdaptiveBinary Pipeline::build_from_source(const std::string& name,
                                           const std::string& source,
                                           double seq_work_s) {
  const auto features = cobayn::kernel_features_of_source(source);
  const auto params = features::estimate_model_params(features, name, seq_work_s);
  return build_impl(name, source, params, options_.work_scale);
}

AdaptiveBinary Pipeline::build_impl(const std::string& name, const std::string& source,
                                    const platform::KernelModelParams& params,
                                    double work_scale) {
  report_ = {};
  AdaptiveBinary out{name,
                     {},
                     {},
                     {},
                     {},
                     {},
                     margot::KnowledgeBase({"config", "threads", "binding"},
                                           {"exec_time_s", "power_w", "throughput"})};
  ChaosEngine& chaos = ChaosEngine::global();

  const auto push_stage = [this](const char* stage_name, bool cache_hit,
                                 double seconds, const SupervisorReport& sup,
                                 std::size_t dropped, std::string note) {
    StageReport stage;
    stage.name = stage_name;
    stage.cache_hit = cache_hit;
    stage.seconds = seconds;
    stage.attempts = sup.attempts;
    stage.fallback = !sup.succeeded;
    stage.dropped_points = dropped;
    stage.note = std::move(note);
    if (stage.fallback)
      MetricsRegistry::global().counter("pipeline.stage_fallbacks").add(1);
    report_.stages.push_back(std::move(stage));
  };

  // Parse: source -> AST.  No degraded product makes sense for a parse
  // failure, so exhaustion propagates after the retries.
  const StageScope parse_stage("Parse");
  std::optional<ir::TranslationUnit> tu;
  const auto parse_sup = supervisor_.run("Parse", [&] {
    chaos.on_stage("stage.Parse");
    tu.emplace(ir::parse(source));
  });
  push_stage("Parse", false, parse_stage.finish(), parse_sup, 0, {});

  // Features: Milepost-style static features of the kernel function.
  // Fallback: a conservative all-zero vector — COBAYN still predicts,
  // just without a feature signal.  A source with no kernel_* function
  // is a caller bug and still propagates (permanent).
  const StageScope features_stage("Features");
  auto features_sup = supervisor_.run_or_report("Features", [&] {
    chaos.on_stage("stage.Features");
    const auto kernels = features::extract_kernel_features(*tu);
    SOCRATES_REQUIRE_MSG(!kernels.empty(), "source has no kernel_* function");
    out.kernel_features = kernels.front().second;
  });
  std::string features_note;
  if (!features_sup.succeeded) {
    out.kernel_features = {};
    features_note = "degraded: conservative default features (" +
                    features_sup.last_error + ")";
    log_warn() << "Features stage exhausted its retries; " << features_note;
  }
  push_stage("Features", false, features_stage.finish(), features_sup, 0,
             std::move(features_note));

  // CobaynPredict: compiler-space pruning.  The trained model is a
  // cached artifact shared across builds and processes.  Fallback: no
  // custom configs — the design space keeps the standard -Os/-O1/-O2/
  // -O3 levels, so the campaign completes with the paper's baseline
  // configurations instead of aborting.
  const StageScope predict_stage("CobaynPredict");
  bool model_hit = false;
  auto predict_sup = supervisor_.run_or_report("CobaynPredict", [&] {
    chaos.on_stage("stage.CobaynPredict");
    model_hit = ensure_cobayn();
    out.custom_configs = options_.use_paper_cfs
                             ? platform::paper_custom_configs()
                             : cobayn_.front().predict_named(out.kernel_features,
                                                             options_.custom_configs);
  });
  std::string predict_note;
  if (!predict_sup.succeeded) {
    out.custom_configs.clear();
    predict_note = "degraded: standard optimization levels only (" +
                   predict_sup.last_error + ")";
    log_warn() << "CobaynPredict stage exhausted its retries; " << predict_note;
  }
  push_stage("CobaynPredict", model_hit, predict_stage.finish(), predict_sup, 0,
             std::move(predict_note));

  // Reduced design space: the 4 standard levels + the CFs.
  std::vector<platform::NamedConfig> configs = platform::standard_levels();
  for (const auto& cf : out.custom_configs) configs.push_back(cf);

  // Dse: explore the space with the configured strategy (cached
  // artifact keyed by strategy + budget).  Faults are absorbed per
  // design point — a point that exhausts its attempts is dropped and
  // reported as reduced coverage, not a failed build.  Runs before
  // Weave so representative pruning can shrink the emitted clone set.
  const std::vector<platform::BindingPolicy> bindings = {
      platform::BindingPolicy::kClose, platform::BindingPolicy::kSpread};
  out.space = dse::DesignSpace{configs, {}, bindings};
  for (std::size_t t = 1; t <= platform_.topology().logical_cores(); ++t)
    out.space.thread_counts.push_back(t);
  // The COBAYN-predicted configs seed the model-guided search.
  std::vector<std::size_t> seed_configs;
  for (std::size_t ci = platform::standard_levels().size(); ci < configs.size(); ++ci)
    seed_configs.push_back(ci);
  const auto explorer = dse::make_explorer(options_.dse, std::move(seed_configs));
  const StageScope dse_stage("Dse");
  ExploreCacheResult dse_result;
  const auto dse_sup = supervisor_.run("Dse", [&] {
    chaos.on_stage("stage.Dse");
    dse_result = explore_cached(source, params, out.space, options_.dse_repetitions,
                                options_.seed + 17, work_scale, *explorer);
    if (dse_result.points.empty())
      throw Error("DSE dropped every design point");
  });
  out.profile = std::move(dse_result.points);
  std::string dse_note;
  {
    std::ostringstream os;
    if (options_.dse.kind != dse::DseStrategyOptions::Kind::kFull)
      os << "strategy " << explorer->name() << ": " << dse_result.evaluated << " of "
         << out.space.size() << " points evaluated";
    if (dse_result.dropped > 0)
      os << (os.str().empty() ? "" : "; ") << "degraded coverage: "
         << dse_result.dropped << " points dropped";
    dse_note = os.str();
  }
  push_stage("Dse", dse_result.cache_hit, dse_stage.finish(), dse_sup,
             dse_result.dropped, std::move(dse_note));

  // Prune: cluster the explored Pareto front to at most K
  // representatives (Luo et al.); the weaver then emits only the
  // pruned clone set and the knowledge base only the representatives.
  std::vector<weaver::CloneSpec> clone_specs;
  if (options_.dse.max_representatives > 0) {
    const StageScope prune_stage("Prune");
    dse::RepresentativeSet reps;
    const auto prune_sup = supervisor_.run("Prune", [&] {
      chaos.on_stage("stage.Prune");
      reps = dse::select_representatives(out.profile,
                                         options_.dse.max_representatives);
    });
    out.representatives = reps.representatives;
    for (const auto& pair : dse::clone_pairs(out.profile, out.representatives))
      clone_specs.push_back({configs[pair.config_index], pair.binding});
    std::ostringstream os;
    os << "front " << reps.front.size() << " -> " << out.representatives.size()
       << " representatives, " << clone_specs.size() << " clone(s)";
    push_stage("Prune", false, prune_stage.finish(), prune_sup, 0, os.str());
  }

  // Weave: LARA/MANET multiversioning + autotuner hooks over the full
  // cross product — or only the pruned clone set.  Fallback: an empty
  // woven report — the knowledge stage does not depend on it, so
  // losing the weave report costs instrumentation, not results.
  const StageScope weave_stage("Weave");
  auto weave_sup = supervisor_.run_or_report("Weave", [&] {
    chaos.on_stage("stage.Weave");
    out.woven = clone_specs.empty()
                    ? weaver::weave_benchmark(name, source, configs, bindings)
                    : weaver::weave_benchmark(name, source, clone_specs);
  });
  std::string weave_note;
  if (!weave_sup.succeeded) {
    out.woven = {};
    weave_note = "degraded: no woven instrumentation (" + weave_sup.last_error + ")";
    log_warn() << "Weave stage exhausted its retries; " << weave_note;
  }
  push_stage("Weave", false, weave_stage.finish(), weave_sup, 0,
             std::move(weave_note));

  // Knowledge: application knowledge for the AS-RTM (pruned to the
  // representatives when the Prune stage ran).
  const StageScope knowledge_stage("Knowledge");
  const auto knowledge_sup = supervisor_.run("Knowledge", [&] {
    chaos.on_stage("stage.Knowledge");
    out.knowledge = out.representatives.empty()
                        ? dse::to_knowledge_base(out.profile)
                        : dse::to_knowledge_base(out.profile, out.representatives);
  });
  push_stage("Knowledge", false, knowledge_stage.finish(), knowledge_sup, 0, {});

  std::size_t degraded = 0;
  for (const auto& s : report_.stages)
    if (s.degraded()) ++degraded;
  log_info() << "built adaptive binary for " << name << ": " << out.profile.size()
             << " operating points, " << out.woven.report.weaved_loc << " weaved LOC"
             << (dse_result.cache_hit ? " (DSE from cache)" : "")
             << (degraded > 0 ? " [" + std::to_string(degraded) + " degraded stage(s)]"
                              : "");
  return out;
}

std::vector<dse::ProfiledPoint> Pipeline::profile_space(
    const std::string& benchmark_name, const dse::DesignSpace& space,
    std::size_t repetitions, std::uint64_t seed, double work_scale) {
  SOCRATES_REQUIRE(repetitions >= 1);
  const auto& bench = kernels::find_benchmark(benchmark_name);
  const StageScope dse_stage("Dse");
  ProfileResult result;
  const auto sup = supervisor_.run("Dse", [&] {
    ChaosEngine::global().on_stage("stage.Dse");
    result = profile_cached(kernels::benchmark_source(benchmark_name), bench.model,
                            space, repetitions, seed, work_scale);
    if (result.points.empty()) throw Error("DSE dropped every design point");
  });
  StageReport stage;
  stage.name = "Dse";
  stage.cache_hit = result.cache_hit;
  stage.seconds = dse_stage.finish();
  stage.attempts = sup.attempts;
  stage.dropped_points = result.dropped;
  if (result.dropped > 0)
    stage.note = "degraded coverage: " + std::to_string(result.dropped) +
                 " design points dropped";
  report_.stages.push_back(std::move(stage));
  return std::move(result.points);
}

weaver::WovenBenchmark Pipeline::weave(const std::string& benchmark_name) {
  const StageScope weave_stage("Weave");
  weaver::WovenBenchmark woven;
  const auto sup = supervisor_.run("Weave", [&] {
    ChaosEngine::global().on_stage("stage.Weave");
    woven = weaver::weave_benchmark_paper_space(
        benchmark_name, kernels::benchmark_source(benchmark_name));
  });
  StageReport stage;
  stage.name = "Weave";
  stage.seconds = weave_stage.finish();
  stage.attempts = sup.attempts;
  report_.stages.push_back(std::move(stage));
  return woven;
}

}  // namespace socrates
