#include "socrates/real_profile.hpp"

#include "kernels/registry.hpp"
#include "margot/monitor.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"
#include "support/error.hpp"
#include "support/statistics.hpp"

namespace socrates {

RealMeasurement profile_real_kernel(const std::string& benchmark,
                                    std::size_t problem_size,
                                    std::size_t repetitions) {
  SOCRATES_REQUIRE(repetitions >= 1);
  const auto& bench = kernels::find_benchmark(benchmark);

  RealMeasurement out;
  out.benchmark = benchmark;
  out.problem_size = problem_size;
  out.repetitions = repetitions;

  const platform::SteadyClock clock;
  const auto energy = platform::make_energy_source();
  out.energy_backend = energy.counter->backend();
  out.energy_available = energy.simulated == nullptr;

  margot::TimeMonitor time_monitor(clock, repetitions);
  margot::EnergyMonitor energy_monitor(*energy.counter, repetitions);

  out.checksum = bench.run(problem_size);  // warm-up (page faults, caches)

  RunningStats time_stats;
  RunningStats energy_stats;
  for (std::size_t r = 0; r < repetitions; ++r) {
    energy_monitor.start();
    time_monitor.start();
    const double checksum = bench.run(problem_size);
    time_stats.add(time_monitor.stop());
    energy_stats.add(energy_monitor.stop());
    SOCRATES_ENSURE(checksum == out.checksum);  // determinism witness
  }

  out.exec_time_mean_s = time_stats.mean();
  out.exec_time_stddev_s = time_stats.stddev();
  out.exec_time_min_s = time_stats.min();
  if (out.energy_available) {
    out.energy_mean_j = energy_stats.mean();
    out.avg_power_w =
        out.exec_time_mean_s > 0.0 ? out.energy_mean_j / out.exec_time_mean_s : 0.0;
  }
  return out;
}

}  // namespace socrates
