// Input-aware adaptive application.
//
// Couples margot::MultiKnowledge with the runtime: the toolchain
// profiles the kernel at several representative dataset scales, each
// becoming a feature cluster; at runtime set_input() selects the
// cluster closest to the current input and the AS-RTM decisions are
// made on *that* knowledge.  Requirements (rank + constraints) are
// broadcast to every cluster so a policy survives input changes, while
// feedback corrections stay per cluster (they describe how *this*
// input's profile deviates, not a global platform shift).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "margot/context.hpp"
#include "margot/data_features.hpp"
#include "platform/executor.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/pipeline.hpp"

namespace socrates {

/// Toolchain product for input-aware execution: one knowledge cluster
/// per profiled dataset scale.
struct InputAwareBinary {
  std::string benchmark;
  dse::DesignSpace space;
  margot::MultiKnowledge knowledge;
  std::vector<double> profiled_scales;
};

/// Builds an InputAwareBinary by running the pipeline once per scale
/// (each scale keys its own DSE artifact, so repeated builds hit the
/// cache).  `scales` must be non-empty, each in (0, 1].
InputAwareBinary build_input_aware(Pipeline& pipeline, const std::string& benchmark,
                                   const std::vector<double>& scales);

class InputAwareApplication {
 public:
  InputAwareApplication(InputAwareBinary binary,
                        const platform::PerformanceModel& platform,
                        std::uint64_t noise_seed = 7);

  /// Declares the current input scale: picks the nearest knowledge
  /// cluster and retunes the executor.  Returns true when the active
  /// cluster changed.
  bool set_input(double scale);

  /// Applies a rank to every cluster's AS-RTM.
  void set_rank_all(const margot::Rank& rank);
  /// Adds a constraint to every cluster's AS-RTM.
  void add_constraint_all(const margot::Constraint& constraint);

  std::size_t active_cluster() const;
  double current_scale() const { return current_scale_; }

  /// One update/start/kernel/stop iteration on the active cluster.
  TraceSample run_iteration();

  double now_s() const { return executor_.clock().now_s(); }

 private:
  InputAwareBinary binary_;
  platform::KernelExecutor executor_;
  std::vector<std::unique_ptr<margot::Context>> contexts_;  ///< one per cluster
  std::size_t active_ = 0;
  double current_scale_ = 1.0;
  bool input_set_ = false;
  std::vector<int> knobs_{0, 0, 0};
};

}  // namespace socrates
