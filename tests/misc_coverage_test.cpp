// Cross-cutting coverage: logging, table separators, model invariants,
// file-based knowledge IO and whole-toolchain determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "kernels/registry.hpp"
#include "margot/kb_io.hpp"
#include "platform/perf_model.hpp"
#include "socrates/toolchain.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace socrates {
namespace {

// ---- logging -------------------------------------------------------------

class LogCapture {
 public:
  LogCapture() {
    previous_level_ = Log::level();
    Log::set_sink(&stream_);
  }
  ~LogCapture() {
    Log::set_sink(nullptr);
    Log::set_level(previous_level_);
  }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  LogLevel previous_level_;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  Log::set_level(LogLevel::kWarn);
  log_debug() << "hidden";
  log_info() << "also hidden";
  log_warn() << "visible warning";
  log_error() << "visible error";
  const std::string out = capture.text();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture;
  Log::set_level(LogLevel::kOff);
  log_error() << "nope";
  EXPECT_TRUE(capture.text().empty());
}

TEST(Log, TagsCarryTheLevel) {
  LogCapture capture;
  Log::set_level(LogLevel::kDebug);
  log_debug() << "x";
  EXPECT_NE(capture.text().find("[socrates:debug]"), std::string::npos);
}

// ---- table ----------------------------------------------------------------

TEST(TextTable, SeparatorSpansTheTable) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  const std::string out = t.str();
  // Header underline + explicit separator -> at least two dashed lines.
  std::size_t dashes = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) ++dashes;
  EXPECT_EQ(dashes, 2u);
  EXPECT_EQ(t.row_count(), 3u);  // separator counts as a row entry
}

TEST(TextTable, LeftAlignOverride) {
  TextTable t({"n", "text"});
  t.set_align(1, Align::kLeft);
  t.add_row({"1", "ab"});
  t.add_row({"2", "abcdef"});
  EXPECT_NE(t.str().find("ab    "), std::string::npos);
}

// ---- model invariants ---------------------------------------------------------

TEST(PerfModelInvariants, BindingIrrelevantAtOneThread) {
  // A single thread lands on socket 0 core 0 either way.
  const auto model = platform::PerformanceModel::paper_platform();
  for (const auto& b : kernels::all_benchmarks()) {
    const auto close = model.evaluate(
        b.model, {platform::FlagConfig(platform::OptLevel::kO2), 1,
                  platform::BindingPolicy::kClose});
    const auto spread = model.evaluate(
        b.model, {platform::FlagConfig(platform::OptLevel::kO2), 1,
                  platform::BindingPolicy::kSpread});
    EXPECT_DOUBLE_EQ(close.exec_time_s, spread.exec_time_s) << b.name;
    EXPECT_DOUBLE_EQ(close.avg_power_w, spread.avg_power_w) << b.name;
  }
}

TEST(PerfModelInvariants, FlagSpeedupMovesTimeNotFreeEnergy) {
  // A faster flag config must not increase energy per run by more than
  // its power factor allows (sanity bound on the model coupling).
  const auto model = platform::PerformanceModel::paper_platform();
  const auto& k = kernels::find_benchmark("2mm").model;
  const auto o2 = model.evaluate(
      k, {platform::FlagConfig(platform::OptLevel::kO2), 16,
          platform::BindingPolicy::kClose});
  const auto o3 = model.evaluate(
      k, {platform::FlagConfig(platform::OptLevel::kO3), 16,
          platform::BindingPolicy::kClose});
  EXPECT_LT(o3.exec_time_s, o2.exec_time_s);
  EXPECT_LT(o3.energy_j, o2.energy_j * 1.05);
}

// ---- knowledge IO through a real file --------------------------------------------

TEST(KbIoFile, SaveLoadThroughFilesystem) {
  margot::KnowledgeBase kb({"config", "threads"},
                           {"exec_time_s", "power_w", "throughput"});
  kb.add(margot::OperatingPoint{
      {3, 17}, {{0.123456789012345, 0.001}, {87.5, 0.5}, {8.1, 0.07}}});

  const std::string path = testing::TempDir() + "/socrates_kb_test.csv";
  {
    std::ofstream out(path);
    margot::save_knowledge(kb, out);
  }
  std::ifstream in(path);
  const auto loaded = margot::load_knowledge(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].knobs, (std::vector<int>{3, 17}));
  EXPECT_DOUBLE_EQ(loaded[0].metrics[0].mean, 0.123456789012345);
  std::remove(path.c_str());
}

// ---- toolchain determinism ----------------------------------------------------------

TEST(ToolchainDeterminism, SameSeedSameKnowledge) {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 2;
  opts.seed = 777;
  Toolchain a(model, opts);
  Toolchain b(model, opts);
  const auto bin_a = a.build("atax");
  const auto bin_b = b.build("atax");
  ASSERT_EQ(bin_a.knowledge.size(), bin_b.knowledge.size());
  for (std::size_t i = 0; i < bin_a.knowledge.size(); ++i) {
    EXPECT_EQ(bin_a.knowledge[i].knobs, bin_b.knowledge[i].knobs);
    EXPECT_DOUBLE_EQ(bin_a.knowledge[i].metrics[0].mean,
                     bin_b.knowledge[i].metrics[0].mean);
  }
  EXPECT_EQ(margot::knowledge_to_string(bin_a.knowledge),
            margot::knowledge_to_string(bin_b.knowledge));
}

TEST(ToolchainDeterminism, CobaynPredictionsAreStable) {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.dse_repetitions = 1;
  opts.corpus_size = 24;
  Toolchain a(model, opts);
  Toolchain b(model, opts);
  const auto cf_a = a.build("doitgen").custom_configs;
  const auto cf_b = b.build("doitgen").custom_configs;
  ASSERT_EQ(cf_a.size(), cf_b.size());
  for (std::size_t i = 0; i < cf_a.size(); ++i)
    EXPECT_TRUE(cf_a[i].config == cf_b[i].config) << i;
}

}  // namespace
}  // namespace socrates
