// Unit tests for the support library: PRNG, statistics, strings, table.
#include <gtest/gtest.h>

#include <cmath>

#include "support/env.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace socrates {
namespace {

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool seen_lo = false;
  bool seen_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen_lo |= v == 3;
    seen_hi |= v == 7;
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalFactorSigmaZeroIsOne) {
  Rng rng(1);
  EXPECT_EQ(rng.lognormal_factor(0.0), 1.0);
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, WeightedPickRejectsAllZero) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_pick(weights), ContractViolation);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

// ---- statistics --------------------------------------------------------------

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Quantile, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 2.0, 3.0}, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Boxplot, SummaryBasics) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const auto s = boxplot_summary(v);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.q1, 25.75, 1e-9);
  EXPECT_NEAR(s.q3, 75.25, 1e-9);
  EXPECT_EQ(s.n, 100u);
  EXPECT_EQ(s.n_outliers, 0u);
  EXPECT_EQ(s.whisker_low, 1.0);
  EXPECT_EQ(s.whisker_high, 100.0);
}

TEST(Boxplot, DetectsOutliers) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1000};
  const auto s = boxplot_summary(v);
  EXPECT_EQ(s.n_outliers, 1u);
  EXPECT_LT(s.whisker_high, 1000.0);
  EXPECT_EQ(s.max, 1000.0);
}

TEST(Statistics, NormalizedBy) {
  const auto out = normalized_by({2.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_THROW(normalized_by({1.0}, 0.0), ContractViolation);
}

TEST(Statistics, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean_of({2.0, 8.0}), 4.0);
  EXPECT_THROW(geometric_mean_of({1.0, -1.0}), ContractViolation);
}

// ---- strings --------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimAndJoin) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(starts_with("kernel_2mm", "kernel_"));
  EXPECT_FALSE(starts_with("ker", "kernel_"));
  EXPECT_TRUE(ends_with("file.c", ".c"));
  EXPECT_TRUE(contains("abcdef", "cde"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("f(x)", "f(", "g("), "g(x)");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

// ---- table ------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Right-aligned numeric column: "22" ends each row at the same offset.
  EXPECT_NE(out.find("     1"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

// ---- hardened environment parsing --------------------------------------------------

TEST(EnvParse, ValidValuesPassThrough) {
  env::reset_warnings();
  EXPECT_EQ(env::parse_size("T_JOBS", "8", 4, 1, 256), 8u);
  EXPECT_EQ(env::parse_size("T_JOBS", "1", 4, 1, 256), 1u);
  EXPECT_EQ(env::parse_size("T_JOBS", "256", 4, 1, 256), 256u);
}

TEST(EnvParse, EmptyMeansFallback) {
  env::reset_warnings();
  EXPECT_EQ(env::parse_size("T_JOBS", "", 4, 1, 256), 4u);
}

TEST(EnvParse, GarbageClampsToTheFallback) {
  env::reset_warnings();
  EXPECT_EQ(env::parse_size("T_JOBS", "many", 4, 1, 256), 4u);
  EXPECT_EQ(env::parse_size("T_JOBS", "8cores", 4, 1, 256), 4u);  // trailing junk
  EXPECT_EQ(env::parse_size("T_JOBS", "3.5", 4, 1, 256), 4u);
}

TEST(EnvParse, OutOfRangeClampsToTheNearestBound) {
  env::reset_warnings();
  EXPECT_EQ(env::parse_size("T_JOBS", "0", 4, 1, 256), 1u);
  EXPECT_EQ(env::parse_size("T_JOBS", "-7", 4, 1, 256), 1u);
  EXPECT_EQ(env::parse_size("T_JOBS", "999", 4, 1, 256), 256u);
  // Far past the integer range: still the upper bound, never UB.
  EXPECT_EQ(env::parse_size("T_JOBS", "99999999999999999999999", 4, 1, 256), 256u);
}

TEST(EnvParse, RealValuesPassThroughAndClamp) {
  env::reset_warnings();
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "0.25", 0.5, 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "1", 0.5, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "1e-3", 0.5, 0.0, 1.0), 1e-3);
  // Out of range clamps to the nearest bound.
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "1.5", 0.5, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "-0.1", 0.5, 0.0, 1.0), 0.0);
}

TEST(EnvParse, RealGarbageFallsBack) {
  env::reset_warnings();
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "half", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "0.25x", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "nan", 0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(env::parse_real("T_FRAC", "inf", 0.5, 0.0, 1.0), 0.5);
}

TEST(EnvParse, ChoiceAcceptsListedValues) {
  env::reset_warnings();
  const std::vector<std::string> policies{"block", "drop-oldest", "reject"};
  EXPECT_EQ(env::parse_choice("T_POLICY", "block", "block", policies), "block");
  EXPECT_EQ(env::parse_choice("T_POLICY", "drop-oldest", "block", policies),
            "drop-oldest");
  EXPECT_EQ(env::parse_choice("T_POLICY", "reject", "block", policies), "reject");
}

TEST(EnvParse, ChoiceFallsBackOnUnknownOrEmpty) {
  env::reset_warnings();
  const std::vector<std::string> policies{"block", "drop-oldest", "reject"};
  EXPECT_EQ(env::parse_choice("T_POLICY", "", "block", policies), "block");
  EXPECT_EQ(env::parse_choice("T_POLICY", "drop_oldest", "block", policies), "block");
  EXPECT_EQ(env::parse_choice("T_POLICY", "BLOCK", "block", policies), "block")
      << "matching is case-sensitive";
  EXPECT_EQ(env::parse_choice("T_POLICY", "random", "block", policies), "block");
}

}  // namespace
}  // namespace socrates
