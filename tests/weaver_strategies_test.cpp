// Tests for the Multiversioning and Autotuner strategies across all
// twelve Polybench benchmarks (parameterized) — the Table I pipeline.
#include <gtest/gtest.h>

#include "ir/loc_counter.hpp"
#include "ir/omp.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "platform/flags.hpp"
#include "support/error.hpp"
#include "weaver/report.hpp"

namespace socrates::weaver {
namespace {

class Strategies : public ::testing::TestWithParam<std::string> {
 protected:
  WovenBenchmark weave() {
    return weave_benchmark_paper_space(GetParam(),
                                       kernels::benchmark_source(GetParam()));
  }
};

TEST_P(Strategies, GeneratesSixteenVersionsPerKernel) {
  const auto woven = weave();
  ASSERT_EQ(woven.kernels.size(), 1u);
  // 8 configs x 2 bindings.
  EXPECT_EQ(woven.kernels[0].versions.size(), 16u);
  // Version ids are dense and unique.
  std::vector<bool> seen(16, false);
  for (const auto& v : woven.kernels[0].versions) {
    ASSERT_GE(v.id, 0);
    ASSERT_LT(v.id, 16);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v.id)]);
    seen[static_cast<std::size_t>(v.id)] = true;
  }
}

TEST_P(Strategies, EveryCloneExistsWithGccPragma) {
  const auto woven = weave();
  const std::string out = ir::print(woven.unit);
  for (const auto& v : woven.kernels[0].versions) {
    EXPECT_NE(woven.unit.find_function(v.function_name), nullptr) << v.function_name;
    const std::string pragma =
        "#pragma GCC optimize(\"" + v.flags.pragma_options() + "\")";
    EXPECT_NE(out.find(pragma), std::string::npos) << pragma;
  }
}

TEST_P(Strategies, ClonesCarryRewrittenOmpPragmas) {
  const auto woven = weave();
  for (const auto& v : woven.kernels[0].versions) {
    const auto* clone = woven.unit.find_function(v.function_name);
    ASSERT_NE(clone, nullptr);
    bool found_rewritten = false;
    ir::walk_stmt(*clone->body, [&](const ir::Stmt& s) {
      if (s.kind != ir::StmtKind::kPragma) return;
      const auto info = ir::parse_omp(static_cast<const ir::PragmaStmt&>(s).pragma);
      if (!info) return;
      EXPECT_EQ(info->clause_argument("num_threads"),
                threads_variable(woven.kernels[0].kernel_name));
      EXPECT_EQ(info->clause_argument("proc_bind"),
                std::string(platform::to_string(v.binding)));
      found_rewritten = true;
    });
    EXPECT_TRUE(found_rewritten) << v.function_name;
  }
}

TEST_P(Strategies, OriginalKernelPragmasUntouched) {
  const auto woven = weave();
  const auto* original = woven.unit.find_function(woven.kernels[0].kernel_name);
  ASSERT_NE(original, nullptr);
  ir::walk_stmt(*original->body, [&](const ir::Stmt& s) {
    if (s.kind != ir::StmtKind::kPragma) return;
    const auto info = ir::parse_omp(static_cast<const ir::PragmaStmt&>(s).pragma);
    if (!info) return;
    EXPECT_FALSE(info->has_clause("proc_bind"));
  });
}

TEST_P(Strategies, WrapperDispatchesOnVersionVariable) {
  const auto woven = weave();
  const auto* wrapper = woven.unit.find_function(woven.kernels[0].wrapper_name);
  ASSERT_NE(wrapper, nullptr);
  const std::string body = ir::print_stmt(*wrapper->body);
  for (const auto& v : woven.kernels[0].versions)
    EXPECT_NE(body.find(v.function_name + "("), std::string::npos);
  EXPECT_NE(body.find(woven.kernels[0].version_var + " == 0"), std::string::npos);
  // Fallback to the original kernel.
  EXPECT_NE(body.find(woven.kernels[0].kernel_name + "("), std::string::npos);
}

TEST_P(Strategies, MainCallsWrapperNotKernel) {
  const auto woven = weave();
  const auto* main_fn = woven.unit.find_function("main");
  ASSERT_NE(main_fn, nullptr);
  const std::string body = ir::print_stmt(*main_fn->body);
  EXPECT_NE(body.find(woven.kernels[0].wrapper_name + "("), std::string::npos);
  // The direct kernel call must be gone (the wrapper name contains the
  // kernel name, so check for "kernel_xxx(" at a call position).
  EXPECT_EQ(body.find(woven.kernels[0].kernel_name + "("), std::string::npos);
}

TEST_P(Strategies, AutotunerInsertsMargotGlue) {
  const auto woven = weave();
  const std::string out = ir::print(woven.unit);
  EXPECT_NE(out.find("#include \"margot.h\""), std::string::npos);
  EXPECT_NE(out.find("margot_init();"), std::string::npos);
  const auto upd = out.find("margot_update(&" + woven.kernels[0].version_var + ", &" +
                            woven.kernels[0].threads_var + ");");
  const auto start = out.find("margot_start_monitors();");
  const auto call = out.find(woven.kernels[0].wrapper_name + "(", start);
  const auto stop = out.find("margot_stop_monitors();");
  EXPECT_NE(upd, std::string::npos);
  EXPECT_TRUE(upd < start && start < call && call < stop);
}

TEST_P(Strategies, ControlVariablesAreDeclared) {
  const auto woven = weave();
  const std::string out = ir::print(woven.unit);
  EXPECT_NE(out.find("int " + woven.kernels[0].version_var + " = 0;"),
            std::string::npos);
  EXPECT_NE(out.find("int " + woven.kernels[0].threads_var + " = 1;"),
            std::string::npos);
}

TEST_P(Strategies, WovenSourceReparsesAndIsStable) {
  const auto woven = weave();
  const std::string once = ir::print(woven.unit);
  const std::string twice = ir::print(ir::parse(once));
  EXPECT_EQ(once, twice);
}

TEST_P(Strategies, TableOneMetricsAreConsistent) {
  const auto woven = weave();
  const auto& r = woven.report;
  EXPECT_EQ(r.benchmark, GetParam());
  EXPECT_GT(r.attributes, 50u);
  EXPECT_GT(r.actions, 50u);
  EXPECT_GT(r.original_loc, 20u);
  // W-LOC is several times O-LOC (an order of magnitude in the paper).
  EXPECT_GT(r.weaved_loc, r.original_loc * 4);
  EXPECT_EQ(r.delta_loc(), r.weaved_loc - r.original_loc);
  EXPECT_GT(r.bloat(), 1.0);
  EXPECT_EQ(r.weaved_loc, ir::logical_loc(woven.unit));
}

TEST_P(Strategies, WeavingIsDeterministic) {
  const auto a = weave();
  const auto b = weave();
  EXPECT_EQ(ir::print(a.unit), ir::print(b.unit));
  EXPECT_EQ(a.report.attributes, b.report.attributes);
  EXPECT_EQ(a.report.actions, b.report.actions);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, Strategies,
                         ::testing::ValuesIn(kernels::benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });
INSTANTIATE_TEST_SUITE_P(ExtendedBenchmarks, Strategies,
                         ::testing::ValuesIn(kernels::extended_benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });


TEST(StrategiesEdge, RequiresAKernelFunction) {
  auto tu = ir::parse("int main(void) { return 0; }");
  WeavingMetrics metrics;
  Weaver weaver(tu, metrics);
  EXPECT_THROW(apply_multiversioning(weaver, platform::standard_levels(),
                                     {platform::BindingPolicy::kClose}),
               ContractViolation);
}

TEST(StrategiesEdge, AutotunerRequiresMain) {
  auto tu = ir::parse("void kernel_x(int n) { }\nvoid caller(void) { kernel_x(1); }");
  WeavingMetrics metrics;
  Weaver weaver(tu, metrics);
  const auto kernels = apply_multiversioning(weaver, platform::standard_levels(),
                                             {platform::BindingPolicy::kClose});
  EXPECT_THROW(apply_autotuner(weaver, kernels), ContractViolation);
}

TEST(StrategiesEdge, MultiKernelApplication) {
  // An application with two computation phases: each kernel gets its
  // own clones and wrapper, and both call sites are instrumented.
  const char* kTwoKernels = R"(
int buffer[100];

void kernel_phase1(int n)
{
  int i;
  #pragma omp parallel for
  for (i = 0; i < n; i++)
    buffer[i] = i * 2;
}

void kernel_phase2(int n)
{
  int i;
  #pragma omp parallel for
  for (i = 0; i < n; i++)
    buffer[i] = buffer[i] + 1;
}

int main(int argc, char **argv)
{
  kernel_phase1(100);
  kernel_phase2(100);
  return 0;
}
)";
  const auto woven = weave_benchmark("two-kernels", kTwoKernels,
                                     platform::standard_levels(),
                                     {platform::BindingPolicy::kClose,
                                      platform::BindingPolicy::kSpread});
  ASSERT_EQ(woven.kernels.size(), 2u);
  EXPECT_EQ(woven.kernels[0].versions.size(), 8u);
  EXPECT_EQ(woven.kernels[1].versions.size(), 8u);
  const std::string out = ir::print(woven.unit);
  // Both wrappers exist and main calls both.
  EXPECT_NE(woven.unit.find_function("kernel_phase1_wrapper"), nullptr);
  EXPECT_NE(woven.unit.find_function("kernel_phase2_wrapper"), nullptr);
  const auto* main_fn = woven.unit.find_function("main");
  const std::string body = ir::print_stmt(*main_fn->body);
  EXPECT_NE(body.find("kernel_phase1_wrapper(100);"), std::string::npos);
  EXPECT_NE(body.find("kernel_phase2_wrapper(100);"), std::string::npos);
  // Each call site is individually instrumented: two update calls.
  std::size_t updates = 0;
  std::size_t pos = 0;
  while ((pos = body.find("margot_update", pos)) != std::string::npos) {
    ++updates;
    ++pos;
  }
  EXPECT_EQ(updates, 2u);
  // Each kernel gets its own control variables (independent tuning).
  EXPECT_NE(out.find("int __margot_version_kernel_phase1 = 0;"), std::string::npos);
  EXPECT_NE(out.find("int __margot_version_kernel_phase2 = 0;"), std::string::npos);
  EXPECT_NE(out.find("margot_update(&__margot_version_kernel_phase1"),
            std::string::npos);
  EXPECT_NE(out.find("margot_update(&__margot_version_kernel_phase2"),
            std::string::npos);
  // The woven multi-kernel source still parses and is stable.
  EXPECT_EQ(out, ir::print(ir::parse(out)));
}

TEST(StrategiesEdge, KernelCalledFromHelperFunction) {
  // Call sites outside main are retargeted and instrumented too.
  const char* kSource = R"(
void kernel_x(int n)
{
  int i;
  for (i = 0; i < n; i++)
    i = i;
}

void driver(int n)
{
  kernel_x(n);
}

int main(int argc, char **argv)
{
  driver(10);
  return 0;
}
)";
  const auto woven =
      weave_benchmark("helper-call", kSource, {platform::NamedConfig{"O2", {}}},
                      {platform::BindingPolicy::kClose});
  const auto* driver = woven.unit.find_function("driver");
  const std::string body = ir::print_stmt(*driver->body);
  EXPECT_NE(body.find("kernel_x_wrapper(n);"), std::string::npos);
  EXPECT_NE(body.find("margot_update"), std::string::npos);
}

TEST(StrategiesEdge, SingleConfigSingleBinding) {
  auto tu = ir::parse(
      "void kernel_x(int n) { }\nint main(void) { kernel_x(1); return 0; }");
  WeavingMetrics metrics;
  Weaver weaver(tu, metrics);
  const auto kernels =
      apply_multiversioning(weaver, {platform::NamedConfig{"O2", {}}},
                            {platform::BindingPolicy::kClose});
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].versions.size(), 1u);
}

}  // namespace
}  // namespace socrates::weaver
