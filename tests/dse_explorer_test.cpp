// The Explorer interface: strategy construction, the two-stage search,
// representative pruning, and the determinism/degradation contracts of
// docs/DSE.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "dse/representative.hpp"
#include "dse/two_stage.hpp"
#include "kernels/registry.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace socrates::dse {
namespace {

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

const DesignSpace& space() {
  static const DesignSpace kSpace = DesignSpace::paper_space(model().topology());
  return kSpace;
}

ExploreContext context(const platform::KernelModelParams& kernel,
                       std::size_t repetitions = 2, std::uint64_t seed = 11) {
  return ExploreContext{model(), kernel, space(), repetitions, seed, 1.0, nullptr, 1};
}

std::uint64_t fingerprint(const Explorer& e) {
  Hasher h;
  e.add_to_key(h);
  return h.digest();
}

class DseExplorer : public ::testing::Test {
 protected:
  void SetUp() override { ChaosEngine::global().disarm(); }
  void TearDown() override { ChaosEngine::global().disarm(); }
};

TEST_F(DseExplorer, DecodeKnobsRoundTripsAcrossEveryStrategy) {
  // Whatever strategy produced the knowledge base, decoding an
  // operating point's knobs must recover the exact configuration that
  // was profiled.
  const auto& kernel = kernels::find_benchmark("2mm").model;
  TwoStageExplorer::Params params;
  params.seed_configs = {4, 6};

  const FullFactorialExplorer full;
  const RandomSubsetExplorer subset(0.1);
  const StratifiedExplorer stratified(4);
  const TwoStageExplorer two_stage(params);
  for (const Explorer* e :
       std::vector<const Explorer*>{&full, &subset, &stratified, &two_stage}) {
    const auto result = e->explore(context(kernel));
    ASSERT_FALSE(result.points.empty()) << e->name();

    std::set<std::tuple<std::size_t, int>> profiled;
    for (const auto& p : result.points)
      profiled.insert({p.configuration.threads, static_cast<int>(p.configuration.binding)});

    const auto kb = to_knowledge_base(result.points);
    ASSERT_EQ(kb.size(), result.points.size()) << e->name();
    for (const auto& op : kb.points()) {
      const auto config = decode_knobs(space(), op.knobs);
      EXPECT_TRUE(profiled.count({config.threads, static_cast<int>(config.binding)}))
          << e->name() << ": decoded a configuration that was never profiled";
    }
  }
}

TEST_F(DseExplorer, MakeExplorerBuildsTheConfiguredStrategy) {
  DseStrategyOptions options;
  EXPECT_EQ(make_explorer(options)->name(), "full");
  options.kind = DseStrategyOptions::Kind::kSubset;
  EXPECT_EQ(make_explorer(options)->name(), "subset");
  options.kind = DseStrategyOptions::Kind::kStratified;
  EXPECT_EQ(make_explorer(options)->name(), "stratified");
  options.kind = DseStrategyOptions::Kind::kTwoStage;
  EXPECT_EQ(make_explorer(options, {4, 5})->name(), "two-stage");
  EXPECT_STREQ(options.kind_name(), "two-stage");
}

TEST_F(DseExplorer, FingerprintsSeparateStrategiesAndBudgets) {
  // The artifact cache must never serve one strategy's profile to
  // another — or to the same strategy with a different budget.
  const FullFactorialExplorer full;
  const RandomSubsetExplorer sub_a(0.25);
  const RandomSubsetExplorer sub_b(0.5);
  const StratifiedExplorer strat(6);
  TwoStageExplorer::Params pa;
  TwoStageExplorer::Params pb;
  pb.budget = 64;
  const TwoStageExplorer two_a(pa);
  const TwoStageExplorer two_b(pb);

  std::set<std::uint64_t> prints{fingerprint(full),   fingerprint(sub_a),
                                 fingerprint(sub_b),  fingerprint(strat),
                                 fingerprint(two_a),  fingerprint(two_b)};
  EXPECT_EQ(prints.size(), 6u);
  EXPECT_EQ(fingerprint(sub_a), fingerprint(RandomSubsetExplorer(0.25)));
}

TEST_F(DseExplorer, FullFactorialExplorerMatchesTheFreeFunction) {
  const auto& kernel = kernels::find_benchmark("atax").model;
  const auto via_explorer = FullFactorialExplorer().explore(context(kernel));
  const auto via_function = full_factorial_dse(model(), kernel, space(), 2, 11);
  ASSERT_EQ(via_explorer.points.size(), via_function.size());
  EXPECT_EQ(via_explorer.evaluated, space().size());
  for (std::size_t i = 0; i < via_function.size(); ++i) {
    EXPECT_EQ(via_explorer.points[i].exec_time_mean_s, via_function[i].exec_time_mean_s);
    EXPECT_EQ(via_explorer.points[i].power_mean_w, via_function[i].power_mean_w);
  }
}

TEST_F(DseExplorer, TwoStageRespectsTheBudget) {
  const auto& kernel = kernels::find_benchmark("syrk").model;
  TwoStageExplorer::Params params;
  params.budget = 32;
  params.seed_configs = {4, 5, 6, 7};
  const TwoStageExplorer explorer(params);
  EXPECT_EQ(explorer.resolved_budget(space().size()), 32u);

  const auto result = explorer.explore(context(kernel, 2, 2018));
  EXPECT_LE(result.evaluated, 32u);
  EXPECT_LE(result.points.size(), result.evaluated);
  EXPECT_GT(result.points.size(), 0u);

  // The auto budget stays an order of magnitude below the space and
  // never exceeds it.
  TwoStageExplorer::Params auto_params;
  const TwoStageExplorer auto_explorer(auto_params);
  EXPECT_LE(auto_explorer.resolved_budget(space().size()), space().size() / 10);
  EXPECT_EQ(auto_explorer.resolved_budget(3), 3u);
}

TEST_F(DseExplorer, TwoStageRejectsBadParameters) {
  TwoStageExplorer::Params degenerate;
  degenerate.population = 1;
  EXPECT_THROW(TwoStageExplorer{degenerate}, ContractViolation);

  TwoStageExplorer::Params no_gens;
  no_gens.generations = 0;
  EXPECT_THROW(TwoStageExplorer{no_gens}, ContractViolation);

  TwoStageExplorer::Params bad_seed;
  bad_seed.seed_configs = {space().configs.size()};
  const TwoStageExplorer explorer(bad_seed);
  const auto& kernel = kernels::find_benchmark("2mm").model;
  EXPECT_THROW(explorer.explore(context(kernel)), ContractViolation);
}

TEST_F(DseExplorer, TwoStageSeedChangesTheSearch) {
  const auto& kernel = kernels::find_benchmark("gemver").model;
  TwoStageExplorer::Params params;
  params.seed_configs = {5};
  const TwoStageExplorer explorer(params);
  const auto a = explorer.explore(context(kernel, 2, 1));
  const auto b = explorer.explore(context(kernel, 2, 1));
  const auto c = explorer.explore(context(kernel, 2, 2));

  const auto flat_set = [](const ExploreResult& r) {
    std::set<std::tuple<std::size_t, std::size_t, int>> s;
    for (const auto& p : r.points)
      s.insert({p.config_index, p.configuration.threads,
                static_cast<int>(p.configuration.binding)});
    return s;
  };
  EXPECT_EQ(flat_set(a), flat_set(b)) << "same seed, same exploration";
  EXPECT_NE(flat_set(a), flat_set(c)) << "the seed must steer the noisy search";
}

TEST_F(DseExplorer, ChaosVoidsGenerationsButNeverCorruptsTheArchive) {
  // dse-explore=1 voids every GA generation: the search degrades to the
  // seeded population + polish, but each returned point is still
  // bit-identical to the clean run's measurement of the same point.
  const auto& kernel = kernels::find_benchmark("nussinov").model;
  TwoStageExplorer::Params params;
  params.seed_configs = {4};
  const TwoStageExplorer explorer(params);
  const auto clean = explorer.explore(context(kernel, 2, 7));

  ChaosSpec spec = ChaosSpec::parse("dse-explore=1:13");
  ASSERT_GT(spec.dse_explore, 0.99);
  ChaosEngine::global().install(spec);
  const auto chaotic = explorer.explore(context(kernel, 2, 7));
  ChaosEngine::global().disarm();

  EXPECT_GT(chaotic.generations, 0u) << "voided generations still count";
  EXPECT_LE(chaotic.points.size(), clean.points.size())
      << "a degraded search cannot discover more than the clean one";
  ASSERT_FALSE(chaotic.points.empty());
  for (const auto& p : chaotic.points) {
    const auto match =
        std::find_if(clean.points.begin(), clean.points.end(), [&](const auto& q) {
          return q.config_index == p.config_index &&
                 q.configuration.threads == p.configuration.threads &&
                 q.configuration.binding == p.configuration.binding;
        });
    if (match == clean.points.end()) continue;  // clean GA went elsewhere
    EXPECT_EQ(p.exec_time_mean_s, match->exec_time_mean_s);
    EXPECT_EQ(p.power_mean_w, match->power_mean_w);
  }
}

TEST_F(DseExplorer, StrategyOptionsDefaultsReproduceThePaper) {
  const DseStrategyOptions options;
  EXPECT_EQ(options.kind, DseStrategyOptions::Kind::kFull);
  EXPECT_EQ(options.max_representatives, 0u);
  EXPECT_STREQ(options.kind_name(), "full");
}

// ---- representative pruning --------------------------------------------------------

ProfiledPoint point(double exec_s, double power_w, std::size_t config_index = 0,
                    std::size_t threads = 1) {
  ProfiledPoint p;
  p.config_index = config_index;
  p.configuration.threads = threads;
  p.exec_time_mean_s = exec_s;
  p.power_mean_w = power_w;
  return p;
}

TEST_F(DseExplorer, RepresentativesKeepTheExtremesAndTheCap) {
  const auto& kernel = kernels::find_benchmark("2mm").model;
  const auto full = full_factorial_dse(model(), kernel, space(), 2, 2018);
  const auto rs = select_representatives(full, 6);

  ASSERT_LE(rs.representatives.size(), 6u);
  ASSERT_GE(rs.representatives.size(), 2u);
  // Representatives are front members.
  const std::set<std::size_t> front(rs.front.begin(), rs.front.end());
  for (const std::size_t i : rs.representatives) EXPECT_TRUE(front.count(i));

  // The extremes of the front survive pruning.
  std::size_t cheapest = rs.front[0], fastest = rs.front[0];
  for (const std::size_t i : rs.front) {
    if (full[i].power_mean_w < full[cheapest].power_mean_w) cheapest = i;
    if (full[i].throughput() > full[fastest].throughput()) fastest = i;
  }
  const std::set<std::size_t> reps(rs.representatives.begin(),
                                   rs.representatives.end());
  EXPECT_TRUE(reps.count(cheapest));
  EXPECT_TRUE(reps.count(fastest));

  // Deterministic.
  EXPECT_EQ(select_representatives(full, 6).representatives, rs.representatives);
}

TEST_F(DseExplorer, RepresentativesZeroCapKeepsTheWholeFront) {
  const std::vector<ProfiledPoint> pts = {point(1.0, 10.0), point(0.5, 20.0),
                                          point(0.25, 40.0), point(2.0, 50.0)};
  const auto rs = select_representatives(pts, 0);
  EXPECT_EQ(rs.representatives, rs.front);
  EXPECT_EQ(rs.front.size(), 3u) << "the dominated point (2s @ 50W) is excluded";
  EXPECT_THROW(select_representatives({}, 4), ContractViolation);
}

TEST_F(DseExplorer, HypervolumeMatchesTheStaircase) {
  // Front: (thr 1, pw 10), (thr 2, pw 20) against ref 30:
  // 1*(30-10) + (2-1)*(30-20) = 30.
  const std::vector<ProfiledPoint> pts = {point(1.0, 10.0), point(0.5, 20.0)};
  EXPECT_DOUBLE_EQ(pareto_hypervolume(pts, 30.0), 30.0);
  // A dominated point adds nothing.
  std::vector<ProfiledPoint> with_dominated = pts;
  with_dominated.push_back(point(1.5, 25.0));
  EXPECT_DOUBLE_EQ(pareto_hypervolume(with_dominated, 30.0), 30.0);
  // Points past the reference contribute nothing.
  EXPECT_DOUBLE_EQ(pareto_hypervolume(pts, 15.0), 5.0);
  EXPECT_THROW(pareto_hypervolume(pts, 0.0), ContractViolation);
  EXPECT_DOUBLE_EQ(pareto_hypervolume({}, 30.0), 0.0);
}

TEST_F(DseExplorer, ClonePairsDedupeInVersionIdOrder) {
  std::vector<ProfiledPoint> pts;
  pts.push_back(point(1.0, 10.0, 3, 4));
  pts.back().configuration.binding = platform::BindingPolicy::kSpread;
  pts.push_back(point(0.9, 12.0, 1, 8));
  pts.push_back(point(0.8, 14.0, 3, 16));
  pts.back().configuration.binding = platform::BindingPolicy::kSpread;
  pts.push_back(point(0.7, 16.0, 1, 2));

  const auto pairs = clone_pairs(pts, {0, 1, 2, 3});
  ASSERT_EQ(pairs.size(), 2u) << "(cfg 3, spread) and (cfg 1, close) each appear once";
  EXPECT_EQ(pairs[0].config_index, 1u);
  EXPECT_EQ(pairs[0].binding, platform::BindingPolicy::kClose);
  EXPECT_EQ(pairs[1].config_index, 3u);
  EXPECT_EQ(pairs[1].binding, platform::BindingPolicy::kSpread);

  EXPECT_THROW(clone_pairs(pts, {4}), ContractViolation);
}

}  // namespace
}  // namespace socrates::dse
