// Tests for the energy counters, clocks and the simulated executor.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "kernels/registry.hpp"
#include "platform/clock.hpp"
#include "platform/executor.hpp"
#include "platform/rapl.hpp"
#include "support/error.hpp"

namespace socrates::platform {
namespace {

TEST(SimulatedRapl, AccruesEnergy) {
  SimulatedRapl rapl;
  EXPECT_EQ(rapl.energy_uj(), 0.0);
  rapl.accrue(2.0, 50.0);  // 100 J
  EXPECT_DOUBLE_EQ(rapl.energy_uj(), 100e6);
  rapl.accrue(1.0, 10.0);
  EXPECT_DOUBLE_EQ(rapl.energy_uj(), 110e6);
}

TEST(SimulatedRapl, IsMonotone) {
  SimulatedRapl rapl;
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    rapl.accrue(0.5, 60.0);
    EXPECT_GE(rapl.energy_uj(), prev);
    prev = rapl.energy_uj();
  }
}

TEST(SimulatedRapl, RejectsNegativeInputs) {
  SimulatedRapl rapl;
  EXPECT_THROW(rapl.accrue(-1.0, 10.0), ContractViolation);
  EXPECT_THROW(rapl.accrue(1.0, -10.0), ContractViolation);
}

TEST(SysfsRapl, GracefulWhenUnavailable) {
  // The sysfs path may or may not exist in the build environment; both
  // outcomes must be consistent.
  const bool avail = SysfsRaplReader::available("/nonexistent/powercap");
  EXPECT_FALSE(avail);
  EXPECT_THROW(SysfsRaplReader("/nonexistent/powercap"), ContractViolation);
}

/// A throwaway powercap tree under the system temp directory.
class FakePowercap {
 public:
  // Unique per process: ctest runs each TEST as its own process, and
  // concurrent fixtures must not share a tree.
  FakePowercap() : root_(std::filesystem::temp_directory_path() /
                         ("socrates_powercap_test." +
                          std::to_string(::getpid()))) {
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "intel-rapl:0");
    std::filesystem::create_directories(root_ / "intel-rapl:1");
    std::filesystem::create_directories(root_ / "intel-rapl:0:0");  // sub-domain
    write(0, 1000.0);
    write(1, 2000.0);
    std::ofstream(root_ / "intel-rapl:0:0" / "energy_uj") << "99999\n";
  }
  ~FakePowercap() { std::filesystem::remove_all(root_); }

  void write(int domain, double uj) {
    std::ofstream out(root_ / ("intel-rapl:" + std::to_string(domain)) /
                      "energy_uj");
    out << uj << "\n";
  }
  void remove(int domain) {
    std::filesystem::remove(root_ / ("intel-rapl:" + std::to_string(domain)) /
                            "energy_uj");
  }
  std::string path() const { return root_.string(); }

 private:
  std::filesystem::path root_;
};

TEST(SysfsRapl, ReadsAndSumsPackageDomainsOnly) {
  FakePowercap tree;
  ASSERT_TRUE(SysfsRaplReader::available(tree.path()));
  SysfsRaplReader reader(tree.path());
  EXPECT_EQ(reader.domains().size(), 2u);  // the a:b:c sub-domain is skipped
  EXPECT_DOUBLE_EQ(reader.energy_uj(), 3000.0);
  EXPECT_EQ(reader.read_errors(), 0u);
}

TEST(SysfsRapl, VanishedDomainFileSkippedAtReadTime) {
  FakePowercap tree;
  SysfsRaplReader reader(tree.path());
  EXPECT_DOUBLE_EQ(reader.energy_uj(), 3000.0);

  // Hot-unplug: one domain's energy_uj file disappears after init.
  tree.remove(1);
  EXPECT_DOUBLE_EQ(reader.energy_uj(), 3000.0);  // last good value substituted
  EXPECT_EQ(reader.read_errors(), 1u);

  // The surviving domain still updates; the counter never goes back.
  tree.write(0, 1500.0);
  EXPECT_DOUBLE_EQ(reader.energy_uj(), 3500.0);
  EXPECT_EQ(reader.read_errors(), 2u);
}

TEST(EnergySource, FallsBackToSimulated) {
  const auto source = make_energy_source();
  ASSERT_NE(source.counter, nullptr);
  if (source.simulated != nullptr) {
    EXPECT_EQ(source.counter->backend(), "simulated");
    source.simulated->accrue(1.0, 42.0);
    EXPECT_DOUBLE_EQ(source.counter->energy_uj(), 42e6);
  } else {
    EXPECT_EQ(source.counter->backend(), "rapl-sysfs");
  }
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_s(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now_s(), 2.0);
  EXPECT_THROW(clock.advance(-1.0), ContractViolation);
}

TEST(SteadyClock, MovesForward) {
  SteadyClock clock;
  const double a = clock.now_s();
  // Burn a few cycles; steady_clock must not go backwards.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  EXPECT_GE(clock.now_s(), a);
}

TEST(Executor, RunAdvancesClockAndEnergy) {
  const auto model = PerformanceModel::paper_platform();
  KernelExecutor exec(model, kernels::find_benchmark("2mm").model);
  const Configuration c{FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose};
  const auto m = exec.run(c);
  EXPECT_DOUBLE_EQ(exec.clock().now_s(), m.exec_time_s);
  EXPECT_NEAR(exec.rapl().energy_uj(), m.energy_j * 1e6, 1.0);
}

TEST(Executor, IdleBurnsIdlePower) {
  const auto model = PerformanceModel::paper_platform();
  KernelExecutor exec(model, kernels::find_benchmark("mvt").model);
  exec.idle(10.0);
  EXPECT_DOUBLE_EQ(exec.clock().now_s(), 10.0);
  EXPECT_DOUBLE_EQ(exec.rapl().energy_uj(),
                   10.0 * model.machine().idle_power_w * 1e6);
}

TEST(Executor, WorkScaleShortensRuns) {
  const auto model = PerformanceModel::paper_platform();
  KernelExecutor big(model, kernels::find_benchmark("2mm").model, 1.0, 1);
  KernelExecutor small(model, kernels::find_benchmark("2mm").model, 0.01, 1);
  const Configuration c{FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose};
  EXPECT_GT(big.run(c).exec_time_s, small.run(c).exec_time_s * 50);
}

TEST(Executor, NoiseSeedReproducesTraces) {
  const auto model = PerformanceModel::paper_platform();
  const Configuration c{FlagConfig(OptLevel::kO3), 16, BindingPolicy::kSpread};
  KernelExecutor a(model, kernels::find_benchmark("syrk").model, 1.0, 77);
  KernelExecutor b(model, kernels::find_benchmark("syrk").model, 1.0, 77);
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a.run(c).exec_time_s, b.run(c).exec_time_s);
}

}  // namespace
}  // namespace socrates::platform
