// Tests for cross-tenant knowledge sharing (server/knowledge_pool.hpp
// and the Server::create_tenant warm-start path): feature distance,
// publish/lookup/eviction, deterministic representative pruning,
// crash-safe persistence with generation fallback, the "server.pool"
// chaos site, and the slot-boundary exception-safety contract of
// tenant creation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "margot/asrtm.hpp"
#include "server/knowledge_pool.hpp"
#include "server/server.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"

namespace socrates::server {
namespace {

namespace fs = std::filesystem;
using margot::KnowledgeBase;
using margot::OperatingPoint;
using margot::Rank;

KnowledgeBase make_kb(std::size_t points = 4) {
  KnowledgeBase kb({"threads"}, {"exec_time_s", "power_w"});
  for (std::size_t i = 0; i < points; ++i) {
    OperatingPoint op;
    op.knobs = {static_cast<int>(i + 1)};
    op.metrics = {{1.0 + 0.1 * static_cast<double>(i), 0.01},
                  {50.0 + static_cast<double>(i), 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

void configure_min_time(margot::Asrtm& asrtm) {
  asrtm.set_rank(Rank::minimize_exec_time(0));
}

/// A feature vector whose model-relevant entries all equal `level`.
features::FeatureVector make_fv(double level) {
  features::FeatureVector fv;
  for (const std::size_t idx : cobayn::CobaynModel::model_feature_indices())
    fv.values[idx] = level;
  return fv;
}

PoolEntry make_entry(const std::string& donor, double level,
                     std::size_t points = 4) {
  PoolEntry e;
  e.donor = donor;
  e.features = make_fv(level);
  e.representatives = make_kb(points);
  e.feedback_updates = 100;
  return e;
}

class KnowledgePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChaosEngine::global().disarm();
    dir_ = fs::temp_directory_path() /
           ("socrates_pool." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ChaosEngine::global().disarm();
    fs::remove_all(dir_);
  }

  std::string pool_path() const { return (dir_ / "pool.kp").string(); }

  fs::path dir_;
};

// ---- feature distance --------------------------------------------------------------

TEST_F(KnowledgePoolTest, DistanceIsZeroForIdenticalAndGrowsWithSeparation) {
  const auto a = make_fv(4.0);
  EXPECT_DOUBLE_EQ(KnowledgePool::feature_distance(a, a), 0.0);
  const double near = KnowledgePool::feature_distance(a, make_fv(4.5));
  const double far = KnowledgePool::feature_distance(a, make_fv(40.0));
  EXPECT_GT(near, 0.0);
  EXPECT_GT(far, near);
  EXPECT_LT(far, 1.0);  // normalized: bounded even for wildly different kernels
}

TEST_F(KnowledgePoolTest, DistanceToNonFiniteFeaturesIsInfinite) {
  auto bad = make_fv(4.0);
  bad.values[cobayn::CobaynModel::model_feature_indices().front()] =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isinf(KnowledgePool::feature_distance(make_fv(4.0), bad)));
}

// ---- publish / lookup --------------------------------------------------------------

TEST_F(KnowledgePoolTest, LookupReturnsNearestWithinThresholdOnly) {
  KnowledgePool pool({.distance_threshold = 0.1});
  pool.publish(make_entry("near", 4.0));
  pool.publish(make_entry("far", 400.0));
  const auto hit = pool.lookup(make_fv(4.01));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entry.donor, "near");
  EXPECT_LT(hit->distance, 0.1);
  EXPECT_FALSE(pool.lookup(make_fv(40.0)).has_value());  // between, out of range
}

TEST_F(KnowledgePoolTest, RepublishReplacesSameDonorAndEvictionIsFifo) {
  KnowledgePool pool({.max_entries = 2});
  pool.publish(make_entry("a", 1.0));
  pool.publish(make_entry("b", 1000.0));
  pool.publish(make_entry("a", 2.0, 3));  // replace, not append
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_TRUE(pool.lookup(make_fv(2.0)).has_value());
  EXPECT_EQ(pool.lookup(make_fv(2.0))->entry.representatives.size(), 3u);
  pool.publish(make_entry("c", 2000000.0));  // evicts the oldest ("a")
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.lookup(make_fv(2.0)).has_value());
  EXPECT_TRUE(pool.lookup(make_fv(1000.0)).has_value());
}

TEST_F(KnowledgePoolTest, LookupTieBreaksTowardEarliestPublish) {
  KnowledgePool pool({.distance_threshold = 1.0});
  // Two donors with identical features: both at distance 0 from the
  // query — the strict < in the scan keeps the earliest publish.
  pool.publish(make_entry("first", 5.0));
  pool.publish(make_entry("second", 5.0));
  const auto hit = pool.lookup(make_fv(5.0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entry.donor, "first");
}

// ---- representative pruning --------------------------------------------------------

TEST_F(KnowledgePoolTest, PruneKeepsExtremesAndIsDeterministic) {
  KnowledgeBase kb = make_kb(10);  // exec_time means 1.0 .. 1.9
  const KnowledgeBase a = KnowledgePool::prune_representatives(kb, 4);
  const KnowledgeBase b = KnowledgePool::prune_representatives(kb, 4);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<std::vector<int>>(a[i].knobs),
              static_cast<std::vector<int>>(b[i].knobs));
  }
  // Both extremes of the first metric survive.
  EXPECT_TRUE(a.find(std::vector<int>{1}).has_value());
  EXPECT_TRUE(a.find(std::vector<int>{10}).has_value());
  // A small KB passes through untouched.
  EXPECT_EQ(KnowledgePool::prune_representatives(kb, 16).size(), 10u);
}

// ---- persistence -------------------------------------------------------------------

TEST_F(KnowledgePoolTest, SaveAndReloadRoundTripsEntries) {
  KnowledgePool::Options opts{.path = pool_path()};
  KnowledgePool pool(opts);
  PoolEntry e = make_entry("donor", 4.0);
  e.posterior = {0.5, 0.25, 0.125, 0.125};
  e.posterior_weight = 48.0;
  pool.publish(std::move(e));
  ASSERT_TRUE(pool.save());

  KnowledgePool reloaded(opts);
  EXPECT_EQ(reloaded.size(), 1u);
  const auto hit = reloaded.lookup(make_fv(4.0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entry.donor, "donor");
  EXPECT_EQ(hit->entry.feedback_updates, 100u);
  EXPECT_EQ(hit->entry.posterior, (std::vector<double>{0.5, 0.25, 0.125, 0.125}));
  EXPECT_DOUBLE_EQ(hit->entry.posterior_weight, 48.0);
  EXPECT_EQ(hit->entry.representatives.size(), 4u);
  EXPECT_DOUBLE_EQ(hit->entry.representatives[0].metrics[0].mean, 1.0);
}

TEST_F(KnowledgePoolTest, CorruptNewestGenerationFallsBackToOlder) {
  KnowledgePool::Options opts{.path = pool_path(), .generations = 2};
  {
    KnowledgePool pool(opts);
    pool.publish(make_entry("gen1", 4.0));
    ASSERT_TRUE(pool.save());
    pool.publish(make_entry("gen0", 1000.0));
    ASSERT_TRUE(pool.save());  // rotates the first save to pool.kp.1
  }
  ASSERT_TRUE(fs::exists(pool_path() + ".1"));
  {  // torch the newest generation mid-payload
    std::ofstream out(pool_path(), std::ios::binary | std::ios::trunc);
    out << "socrates-pool v1 999999 12345\ngarbage";
  }
  KnowledgePool recovered(opts);
  EXPECT_EQ(recovered.size(), 1u);
  EXPECT_TRUE(recovered.lookup(make_fv(4.0)).has_value());

  {  // torch both generations: the pool degrades to empty, no throw
    std::ofstream out(pool_path() + ".1", std::ios::binary | std::ios::trunc);
    out << "not a pool file";
  }
  KnowledgePool empty(opts);
  EXPECT_EQ(empty.size(), 0u);
}

// ---- chaos -------------------------------------------------------------------------

TEST_F(KnowledgePoolTest, ChaosPoolCorruptionDegradesHitsToMisses) {
  KnowledgePool pool({});
  pool.publish(make_entry("donor", 4.0));
  ChaosSpec spec;
  spec.pool_corrupt = 1.0;
  ChaosEngine::global().install(spec);
  EXPECT_FALSE(pool.lookup(make_fv(4.0)).has_value());  // voided, not crashed
  ChaosEngine::global().disarm();
  EXPECT_TRUE(pool.lookup(make_fv(4.0)).has_value());
}

// ---- arrival-order determinism -----------------------------------------------------

TEST_F(KnowledgePoolTest, SamePublishHistoryGivesIdenticalLookups) {
  const auto run = [](KnowledgePool& pool) {
    pool.publish(make_entry("a", 2.0));
    pool.publish(make_entry("b", 2.2));
    pool.publish(make_entry("c", 8.0));
    std::vector<std::string> donors;
    for (const double q : {2.05, 2.15, 7.9, 2.1}) {
      const auto hit = pool.lookup(make_fv(q));
      donors.push_back(hit ? hit->entry.donor : "<miss>");
    }
    return donors;
  };
  KnowledgePool p1({.distance_threshold = 0.25});
  KnowledgePool p2({.distance_threshold = 0.25});
  EXPECT_EQ(run(p1), run(p2));
}

// ---- server integration ------------------------------------------------------------

class PoolServerTest : public KnowledgePoolTest {
 protected:
  ServerOptions base_options() {
    ServerOptions o;
    o.shards = 2;
    o.ring_capacity = 64;
    o.batch_drain = 16;
    o.max_tenants = 8;
    o.shard_stall_deadline_s = 60.0;  // watchdog effectively off
    o.pool_publish_after = 4;
    return o;
  }
};

TEST_F(PoolServerTest, ConvergedDonorWarmStartsASimilarTenant) {
  Server server(base_options());
  ASSERT_NE(server.knowledge_pool(), nullptr);

  TenantProfile donor_profile;
  donor_profile.features = make_fv(4.0);
  const CreateResult donor = server.create_tenant("donor", make_kb(), configure_min_time,
                                                  donor_profile);
  ASSERT_TRUE(donor.created);
  EXPECT_FALSE(donor.warm_started);  // empty pool: cold start

  // Converge: enough applied feedback to cross pool_publish_after, with
  // observations 2x the design-time estimate so the correction learns.
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(server.submit_feedback(donor.handle, 0, 0, 2.0), Admission::kAccepted);
  }
  ASSERT_TRUE(server.drain(5.0));
  // The shard worker publishes on convergence; poll briefly for it.
  for (int i = 0; i < 100 && server.stats().pool_entries == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(server.stats().pool_entries, 1u);

  // A new tenant nearby: knows knobs {1,2} only — the donor's {3,4}
  // configurations are appended, its {1,2} metrics replaced by the
  // corrected (scaled) values.
  TenantProfile warm_profile;
  warm_profile.features = make_fv(4.05);
  const CreateResult warm =
      server.create_tenant("warm", make_kb(2), configure_min_time, warm_profile);
  ASSERT_TRUE(warm.created);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_EQ(warm.donor, "donor");
  EXPECT_GT(warm.seeded_points, 0u);
  EXPECT_LT(warm.pool_distance, server.options().pool_distance_threshold);
  EXPECT_EQ(server.stats().warm_started, 1u);

  // The appended donor points widened the tenant's op range: op 3 would
  // be kInvalid against the 2-point cold KB.
  EXPECT_EQ(server.submit_feedback(warm.handle, 3, 0, 2.0), Admission::kAccepted);
  // And the seeded metrics carry the donor's learned correction (~2x).
  server.with_tenant(warm.handle, [](margot::Asrtm& asrtm) {
    EXPECT_GT(asrtm.knowledge()[0].metrics[0].mean, 1.5);
  });
}

TEST_F(PoolServerTest, SharingDisabledAndFeaturelessTenantsStayCold) {
  ServerOptions off = base_options();
  off.share_knowledge = false;
  Server server(off);
  EXPECT_EQ(server.knowledge_pool(), nullptr);
  TenantProfile profile;
  profile.features = make_fv(4.0);
  const CreateResult r = server.create_tenant("t", make_kb(), configure_min_time, profile);
  ASSERT_TRUE(r.created);
  EXPECT_FALSE(r.warm_started);
  EXPECT_EQ(server.stats().pool_entries, 0u);

  Server on(base_options());
  on.create_tenant("donor", make_kb(), configure_min_time,
                   TenantProfile{.features = make_fv(4.0)});
  on.checkpoint_all();  // donates even below the convergence threshold
  ASSERT_GE(on.stats().pool_entries, 1u);
  // No features in the profile: never probes the pool.
  const CreateResult cold = on.create_tenant("cold", make_kb(), configure_min_time);
  ASSERT_TRUE(cold.created);
  EXPECT_FALSE(cold.warm_started);
}

TEST_F(PoolServerTest, SchemaMismatchFallsBackToColdStart) {
  Server server(base_options());
  server.create_tenant("donor", make_kb(), configure_min_time,
                       TenantProfile{.features = make_fv(4.0)});
  server.checkpoint_all();
  ASSERT_GE(server.stats().pool_entries, 1u);

  KnowledgeBase other({"blocks"}, {"exec_time_s"});
  OperatingPoint op;
  op.knobs = {1};
  op.metrics = {{1.0, 0.0}};
  other.add(std::move(op));
  const CreateResult r = server.create_tenant(
      "mismatch", std::move(other), configure_min_time,
      TenantProfile{.features = make_fv(4.0)});
  ASSERT_TRUE(r.created);
  EXPECT_FALSE(r.warm_started);
  EXPECT_EQ(r.seeded_points, 0u);
}

TEST_F(PoolServerTest, ChaosCorruptPoolEntryColdStartsWithoutCrashing) {
  Server server(base_options());
  server.create_tenant("donor", make_kb(), configure_min_time,
                       TenantProfile{.features = make_fv(4.0)});
  server.checkpoint_all();
  ASSERT_GE(server.stats().pool_entries, 1u);
  ChaosSpec spec;
  spec.pool_corrupt = 1.0;
  ChaosEngine::global().install(spec);
  const CreateResult r = server.create_tenant("victim", make_kb(), configure_min_time,
                                              TenantProfile{.features = make_fv(4.0)});
  ChaosEngine::global().disarm();
  ASSERT_TRUE(r.created);
  EXPECT_FALSE(r.warm_started);
}

TEST_F(PoolServerTest, WarmPosteriorMergesDonorAndOwnWeights) {
  Server server(base_options());
  {
    PoolEntry e = make_entry("donor", 4.0);
    e.posterior = {1.0, 0.0};
    e.posterior_weight = 1.0;
    server.knowledge_pool()->publish(std::move(e));
  }
  TenantProfile profile;
  profile.features = make_fv(4.0);
  profile.posterior = {0.0, 1.0};
  profile.posterior_weight = 3.0;
  const CreateResult r =
      server.create_tenant("warm", make_kb(), configure_min_time, profile);
  ASSERT_TRUE(r.created);
  ASSERT_TRUE(r.warm_started);
  ASSERT_EQ(r.warm_posterior.size(), 2u);
  EXPECT_DOUBLE_EQ(r.warm_posterior[0], 0.25);  // donor weight 1 of 4
  EXPECT_DOUBLE_EQ(r.warm_posterior[1], 0.75);  // own weight 3 of 4

  // A donor posterior of a different size cannot merge: keep our own.
  {
    PoolEntry e = make_entry("donor", 4.0);
    e.posterior = {0.5, 0.25, 0.25};
    server.knowledge_pool()->publish(std::move(e));
  }
  const CreateResult kept =
      server.create_tenant("warm2", make_kb(), configure_min_time, profile);
  ASSERT_TRUE(kept.warm_started);
  EXPECT_EQ(kept.warm_posterior, profile.posterior);
}

TEST_F(PoolServerTest, PoolPersistsAcrossServerRestart) {
  ServerOptions opts = base_options();
  opts.checkpoint_dir = dir_.string();
  {
    Server server(opts);
    server.create_tenant("donor", make_kb(), configure_min_time,
                         TenantProfile{.features = make_fv(4.0)});
    server.checkpoint_all();
  }
  Server revived(opts);
  EXPECT_GE(revived.stats().pool_entries, 1u);
  const CreateResult r = revived.create_tenant(
      "warm", make_kb(2), configure_min_time, TenantProfile{.features = make_fv(4.0)});
  ASSERT_TRUE(r.created);
  EXPECT_TRUE(r.warm_started);
  EXPECT_EQ(r.donor, "donor");
}

// ---- slot-boundary exception safety ------------------------------------------------

TEST_F(PoolServerTest, FailedRegistrationReleasesItsSlot) {
  ServerOptions opts = base_options();
  opts.max_tenants = 2;
  Server server(opts);
  ASSERT_TRUE(server.create_tenant("ok", make_kb(), configure_min_time).created);
  // A configure functor that throws must not consume the last slot.
  const auto boom = [](margot::Asrtm&) { throw std::runtime_error("boom"); };
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(server.create_tenant("bad", make_kb(), boom).created);
    EXPECT_EQ(server.tenant_count(), 1u);
  }
  const CreateResult last = server.create_tenant("last", make_kb(), configure_min_time);
  ASSERT_TRUE(last.created);
  EXPECT_EQ(last.handle, 1u);
  EXPECT_EQ(server.tenant_count(), 2u);
  // Cap reached: further creations are rejected, count stable.
  EXPECT_FALSE(server.create_tenant("over", make_kb(), configure_min_time).created);
  EXPECT_EQ(server.tenant_count(), 2u);
}

TEST_F(PoolServerTest, ConcurrentRegistrationFillsExactlyMaxTenants) {
  ServerOptions opts = base_options();
  opts.max_tenants = 4;
  Server server(opts);
  constexpr int kThreads = 8;
  std::atomic<int> created{0};
  std::vector<Server::TenantHandle> handles(kThreads,
                                            std::numeric_limits<std::uint64_t>::max());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const CreateResult r = server.create_tenant(
          "t" + std::to_string(i), make_kb(), configure_min_time);
      if (r.created) {
        handles[static_cast<std::size_t>(i)] = r.handle;
        created.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(created.load(), 4);
  EXPECT_EQ(server.tenant_count(), 4u);
  std::vector<Server::TenantHandle> won;
  for (const auto h : handles)
    if (h != std::numeric_limits<std::uint64_t>::max()) won.push_back(h);
  std::sort(won.begin(), won.end());
  EXPECT_EQ(won, (std::vector<Server::TenantHandle>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace socrates::server
