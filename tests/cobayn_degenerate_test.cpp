// Degenerate-input hardening of the COBAYN model: zero-training-row
// artifacts, non-finite feature vectors, over-large distinct-sample
// counts, and the posterior export/merge API the cross-tenant knowledge
// pool is built on (docs/MODEL.md).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "cobayn/corpus.hpp"
#include "kernels/sources.hpp"
#include "platform/compiler_model.hpp"
#include "support/error.hpp"

namespace socrates::cobayn {
namespace {

const CobaynModel& trained() {
  static const CobaynModel kModel = [] {
    return CobaynModel::train(make_corpus(48, 2018),
                              platform::PerformanceModel::paper_platform());
  }();
  return kModel;
}

features::FeatureVector sample_features() {
  return kernel_features_of_source(kernels::benchmark_source("mvt"));
}

/// The trained model's artifact with its training-row count rewritten
/// to zero — the shape a corrupted or empty-corpus artifact arrives in.
CobaynModel zero_row_model() {
  std::stringstream ss;
  trained().save(ss);
  std::string text = ss.str();
  const std::string prefix = "cobayn v1 ";
  EXPECT_EQ(text.rfind(prefix, 0), 0u);
  const std::size_t rows_end = text.find(' ', prefix.size());
  text.replace(prefix.size(), rows_end - prefix.size(), "0");
  std::istringstream in(text);
  return CobaynModel::load(in);
}

TEST(CobaynDegenerate, ZeroTrainingRowsRaisesNamedError) {
  const CobaynModel empty = zero_row_model();
  EXPECT_EQ(empty.training_rows(), 0u);
  const auto fv = sample_features();
  try {
    empty.predict(fv, 4);
    FAIL() << "predict on a zero-row model must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("zero training rows"), std::string::npos);
  }
  EXPECT_THROW(empty.predict_named(fv, 4), ContractViolation);
  EXPECT_THROW(empty.export_posterior(fv), ContractViolation);
  Rng rng(1);
  EXPECT_THROW(empty.sample_configs(rng, fv, 4), ContractViolation);
}

TEST(CobaynDegenerate, NonFiniteFeatureRaisesNamedError) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    auto fv = sample_features();
    fv.values[CobaynModel::model_feature_indices().front()] = bad;
    try {
      trained().predict(fv, 4);
      FAIL() << "predict on a non-finite feature must throw";
    } catch (const ContractViolation& e) {
      const std::string what = e.what();
      // The error names the offending feature so the caller can find
      // the upstream extraction bug.
      EXPECT_NE(what.find("non-finite feature"), std::string::npos) << what;
      EXPECT_NE(what.find("f_"), std::string::npos) << what;
    }
    EXPECT_THROW(trained().export_posterior(fv), ContractViolation);
  }
}

TEST(CobaynDegenerate, DistinctSamplingCoversAndClampsTheWholeSpace) {
  const std::size_t space = std::size_t{2} << platform::kFlagCount;
  const auto fv = sample_features();
  Rng rng(7);
  // Asking for exactly the whole space terminates (the zero-mass tail
  // falls back to ranked order instead of rejection-looping) and yields
  // every configuration exactly once.
  const auto all = trained().sample_configs(rng, fv, space);
  ASSERT_EQ(all.size(), space);
  std::set<std::string> seen;
  for (const auto& cfg : all) seen.insert(cfg.pragma_options());
  EXPECT_EQ(seen.size(), space);
  // More than the space clamps instead of throwing or duplicating.
  Rng rng2(7);
  EXPECT_EQ(trained().sample_configs(rng2, fv, space * 10).size(), space);
}

TEST(CobaynDegenerate, ExportedPosteriorIsANormalizedDistribution) {
  const auto posterior = trained().export_posterior(sample_features());
  ASSERT_EQ(posterior.size(), std::size_t{2} << platform::kFlagCount);
  double total = 0.0;
  for (const double p : posterior) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CobaynDegenerate, MergePosteriorIsWeightProportionalAndGuarded) {
  const std::vector<double> a{1.0, 0.0};
  const std::vector<double> b{0.0, 1.0};
  const auto merged = CobaynModel::merge_posterior(a, 1.0, b, 3.0);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0], 0.25);
  EXPECT_DOUBLE_EQ(merged[1], 0.75);
  EXPECT_THROW(CobaynModel::merge_posterior(a, 1.0, {0.5}, 1.0), ContractViolation);
  EXPECT_THROW(CobaynModel::merge_posterior(a, -1.0, b, 2.0), ContractViolation);
  EXPECT_THROW(CobaynModel::merge_posterior(a, 0.0, b, 0.0), ContractViolation);
}

TEST(CobaynDegenerate, TopConfigsAreTheRankedPosteriorHead) {
  using platform::FlagConfig;
  using platform::OptLevel;
  std::vector<double> posterior(std::size_t{2} << platform::kFlagCount, 0.0);
  posterior[5] = 0.5;    // O2, flag bits 5
  posterior[100] = 0.3;  // O3 (bit 6 set), flag bits 36
  posterior[0] = 0.2;    // plain O2
  const auto top = CobaynModel::top_configs(posterior, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], FlagConfig(OptLevel::kO2, 5));
  EXPECT_EQ(top[1], FlagConfig(OptLevel::kO3, 36));
  EXPECT_EQ(top[2], FlagConfig(OptLevel::kO2, 0));
  EXPECT_THROW(CobaynModel::top_configs({0.5, 0.5}, 1), ContractViolation);
}

}  // namespace
}  // namespace socrates::cobayn
