// Edge-case sweep across modules: parser error paths, OpenMP pragma
// corner cases, BN sampling with evidence, executor interplay, and
// input-aware requirement broadcasting.
#include <gtest/gtest.h>

#include "bayes/network.hpp"
#include "ir/lexer.hpp"
#include "ir/omp.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "kernels/registry.hpp"
#include "platform/executor.hpp"
#include "socrates/input_aware_app.hpp"
#include "socrates/toolchain.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

// ---- parser error paths -----------------------------------------------------

TEST(ParserErrors, UnterminatedConstructs) {
  EXPECT_THROW(ir::parse("void f(void) {"), ir::ParseError);
  EXPECT_THROW(ir::parse("void f(int a,"), ir::ParseError);
  EXPECT_THROW(ir::parse_expression("(a + b"), ir::ParseError);
  EXPECT_THROW(ir::parse_expression("A[i"), ir::ParseError);
  EXPECT_THROW(ir::parse_statement("if (x) else y;"), ir::ParseError);
}

TEST(ParserErrors, MissingSemicolons) {
  EXPECT_THROW(ir::parse_statement("x = 1"), ir::ParseError);
  EXPECT_THROW(ir::parse_statement("return x"), ir::ParseError);
  EXPECT_THROW(ir::parse("int g = 3"), ir::ParseError);
}

TEST(ParserErrors, BadDirectives) {
  EXPECT_THROW(ir::parse("#garbage nonsense"), ir::ParseError);
  // #pragma inside a function is fine, #include is not.
  EXPECT_THROW(ir::parse("void f(void) {\n#include <x.h>\n}"), ir::ParseError);
}

TEST(ParserErrors, ExpressionInTypePosition) {
  EXPECT_THROW(ir::parse("1 + 2;"), ir::ParseError);
}

// ---- OpenMP pragma corners ------------------------------------------------------

TEST(OmpCorners, BareDirectives) {
  const auto barrier = ir::parse_omp(ir::Pragma{"omp barrier"});
  ASSERT_TRUE(barrier.has_value());
  EXPECT_EQ(barrier->directive, "barrier");
  EXPECT_TRUE(barrier->clauses.empty());
  EXPECT_EQ(barrier->render(), "omp barrier");
}

TEST(OmpCorners, NestedParensInClause) {
  const auto info =
      ir::parse_omp(ir::Pragma{"omp parallel for num_threads(f(a, b) + 1)"});
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->clause_argument("num_threads"), "f(a, b) + 1");
}

TEST(OmpCorners, WhitespaceRobustness) {
  const auto info =
      ir::parse_omp(ir::Pragma{"  omp   parallel   for   nowait  "});
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->directive, "parallel for");
  EXPECT_TRUE(info->has_clause("nowait"));
}

// ---- BN forward sampling with fixed evidence --------------------------------------

TEST(BayesSampling, EvidencePinsVariables) {
  bayes::BayesNet net({bayes::Variable{"a", 2}, bayes::Variable{"b", 2}});
  net.add_edge(0, 1);
  bayes::Dataset data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({0, 0});
    data.push_back({1, 1});
  }
  net.fit(data, 0.1);
  Rng rng(3);
  bayes::Assignment evidence(2, std::nullopt);
  evidence[0] = 1;
  for (int i = 0; i < 100; ++i) {
    const auto s = net.sample(rng, evidence);
    EXPECT_EQ(s[0], 1u);
  }
}

// ---- executor interplay --------------------------------------------------------------

TEST(ExecutorInterplay, IdleTimeMovesDisturbanceWindows) {
  // A disturbance scheduled after 100 s of idling must not hit a run
  // that happens before it.
  const auto model = platform::PerformanceModel::paper_platform();
  platform::KernelExecutor exec(model, kernels::find_benchmark("2mm").model, 0.01, 5);
  platform::DisturbanceSchedule sched;
  sched.add({100.0, 200.0, 0.0, 0.0, 50.0});
  exec.set_disturbances(std::move(sched));

  const platform::Configuration c{platform::FlagConfig(platform::OptLevel::kO2), 8,
                                  platform::BindingPolicy::kClose};
  const auto before = exec.run(c);
  exec.idle(150.0);
  const auto during = exec.run(c);
  EXPECT_NEAR(during.avg_power_w - before.avg_power_w, 50.0,
              before.avg_power_w * 0.1);
}

TEST(ExecutorInterplay, WorkScaleChangeTakesEffectImmediately) {
  const auto model = platform::PerformanceModel::paper_platform();
  platform::KernelExecutor exec(model, kernels::find_benchmark("syrk").model, 1.0, 5);
  const platform::Configuration c{platform::FlagConfig(platform::OptLevel::kO2), 8,
                                  platform::BindingPolicy::kClose};
  const double full = exec.run(c).exec_time_s;
  exec.set_work_scale(0.1);
  const double small = exec.run(c).exec_time_s;
  EXPECT_LT(small, full * 0.2);
  EXPECT_THROW(exec.set_work_scale(0.0), ContractViolation);
}

// ---- input-aware requirement broadcast ----------------------------------------------

TEST(InputAwareBroadcast, ConstraintsApplyToEveryCluster) {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 2;
  Toolchain tc(kModel, opts);
  InputAwareApplication app(build_input_aware(tc.pipeline(), "2mm", {0.05, 1.0}), kModel);

  using M = margot::ContextMetrics;
  app.set_rank_all(margot::Rank::minimize_exec_time(M::kExecTime));
  app.add_constraint_all({M::kPower, margot::ComparisonOp::kLessEqual, 80.0, 0, 0.0});

  for (const double scale : {0.05, 1.0}) {
    app.set_input(scale);
    const auto s = app.run_iteration();
    EXPECT_LE(s.power_w, 85.0) << "cap must hold at scale " << scale;
  }
}

// ---- weaving determinism under the full toolchain -------------------------------------

TEST(ToolchainWeave, WovenUnitsIdenticalAcrossBuilds) {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 1;
  Toolchain tc(kModel, opts);
  const auto a = tc.build("seidel-2d");
  const auto b = tc.build("seidel-2d");
  EXPECT_EQ(ir::print(a.woven.unit), ir::print(b.woven.unit));
}

}  // namespace
}  // namespace socrates
