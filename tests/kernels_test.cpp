// Tests for the real Polybench kernel implementations and the registry.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/polybench.hpp"
#include "kernels/polybench_ext.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "support/error.hpp"

namespace socrates::kernels {
namespace {

TEST(Registry, TwelveBenchmarksInTableOrder) {
  const auto& all = all_benchmarks();
  ASSERT_EQ(all.size(), 12u);
  EXPECT_EQ(all.front().name, "2mm");
  EXPECT_EQ(all.back().name, "syrk");
  EXPECT_EQ(benchmark_names().size(), 12u);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].name, benchmark_names()[i]);
}

TEST(Registry, LookupAndUnknown) {
  EXPECT_EQ(find_benchmark("jacobi-2d").kernel_function, "kernel_jacobi_2d");
  EXPECT_EQ(find_benchmark("gemm").kernel_function, "kernel_gemm");  // extended set
  EXPECT_THROW(find_benchmark("floyd-warshall"), ContractViolation);
}

TEST(Registry, ExtendedSuiteIsComplete) {
  const auto& ext = extended_benchmarks();
  ASSERT_EQ(ext.size(), 6u);
  ASSERT_EQ(extended_benchmark_names().size(), 6u);
  for (std::size_t i = 0; i < ext.size(); ++i) {
    EXPECT_EQ(ext[i].name, extended_benchmark_names()[i]);
    EXPECT_GT(ext[i].model.seq_work_s, 0.0);
    // Every extended benchmark has a weavable source with its kernel.
    const auto& src = benchmark_source(ext[i].name);
    EXPECT_NE(src.find("void " + ext[i].kernel_function), std::string::npos);
  }
}

TEST(Registry, ModelParamsAreSane) {
  for (const auto& b : all_benchmarks()) {
    EXPECT_GT(b.model.seq_work_s, 0.0) << b.name;
    EXPECT_GT(b.model.parallel_fraction, 0.0) << b.name;
    EXPECT_LE(b.model.parallel_fraction, 1.0) << b.name;
    EXPECT_GE(b.model.mem_intensity, 0.0) << b.name;
    EXPECT_LE(b.model.mem_intensity, 1.0) << b.name;
  }
}

TEST(Registry, SourcesContainTheKernelFunction) {
  for (const auto& b : all_benchmarks()) {
    const auto& src = benchmark_source(b.name);
    EXPECT_NE(src.find("void " + b.kernel_function), std::string::npos) << b.name;
    EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos) << b.name;
  }
}

// ---- real kernel execution ----------------------------------------------------

class KernelRun : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelRun, DeterministicChecksum) {
  const auto& bench = find_benchmark(GetParam());
  const double a = bench.run(24);
  const double b = bench.run(24);
  EXPECT_TRUE(std::isfinite(a)) << GetParam();
  EXPECT_DOUBLE_EQ(a, b) << GetParam();
}

TEST_P(KernelRun, ChecksumDependsOnSize) {
  const auto& bench = find_benchmark(GetParam());
  EXPECT_NE(bench.run(16), bench.run(24)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, KernelRun,
                         ::testing::ValuesIn(benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });
INSTANTIATE_TEST_SUITE_P(ExtendedBenchmarks, KernelRun,
                         ::testing::ValuesIn(kernels::extended_benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });


TEST(KernelCorrectness, Atax2x2ByHand) {
  // For n=2: m=2, nn=2. x = [1+0/2, 1+1/2] = [1, 1.5];
  // A[i][j] = ((i+j) % 2) / 10 -> [[0, .1], [.1, 0]].
  // tmp = A*x = [.15, .1]; y = A^T*tmp = [.01, .015].
  // checksum weights: 1.0, 1.125 -> 0.01 + 0.015*1.125 = 0.026875.
  EXPECT_NEAR(run_atax(2), 0.026875, 1e-12);
}

TEST(KernelCorrectness, Mvt2x2ByHand) {
  // n=2: x1=[0,.5], x2=[.5,1], y1=[1.5,2], y2=[2,2.5],
  // A[i][j]=(i*j%n)/n = [[0,0],[0,.5]].
  // x1' = x1 + A*y1  = [0, .5 + .5*2]   = [0, 1.5]
  // x2' = x2 + A'*y2 = [.5, 1 + .5*2.5] = [.5, 2.25]
  // checksum = (0 + 1.5*1.125) + (.5 + 2.25*1.125) = 4.71875.
  EXPECT_NEAR(run_mvt(2), 4.71875, 1e-12);
}

TEST(KernelCorrectness, JacobiConvergesTowardsSmoothField) {
  // A Jacobi sweep is an averaging operator: the checksum stays finite
  // and bounded by the initial field's magnitude.
  const double c = run_jacobi_2d(32);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(c, 0.0);
}

TEST(KernelCorrectness, NussinovScoreWithinBounds) {
  // Each table cell is at most n/2 pairings; checksum must be bounded.
  const double c = run_nussinov(16);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 16.0 * 16.0 * 8.0 * 2.0);
}

TEST(KernelCorrectness, CorrelationDiagonalIsOne) {
  // The correlation matrix has a unit diagonal; with the positional
  // checksum weights a lower bound of the diagonal mass must be present.
  const double c = run_correlation(8);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(c, 8.0 * 0.9);  // at least ~the diagonal mass
}

TEST(KernelCorrectness, Gemm2x2ByHand) {
  // n=2 -> ni=nj=nk=2; A=[[.5,.5],[.5,0]], B=[[0,0],[0,.5]],
  // C=[[.5,.5],[.5,0]]; C := 1.2*C + 1.5*A*B = [[.6,.975],[.6,0]].
  // checksum = .6 + .975*1.125 + .6*1.25 = 2.446875.
  EXPECT_NEAR(run_gemm(2), 2.446875, 1e-12);
}

TEST(KernelCorrectness, Bicg2x2ByHand) {
  // rows=cols=2; p=r=[0,.5]; A=[[0,0],[.5,0]].
  // s = A^T r = [.25, 0]; q = A p = [0, 0]; checksum sum = 0.25.
  EXPECT_NEAR(run_bicg(2), 0.25, 1e-12);
}

TEST(KernelCorrectness, Trmm2x2ByHand) {
  // m=n=2; A=[[1,0],[.5,1]] (unit lower), B=[[1,.5],[1.5,1]].
  // B := 1.5 * A^T-style triangular update =
  //   [[1.5*(1+.5*1.5), 1.5*(.5+.5*1)], [1.5*1.5, 1.5*1]]
  //   = [[2.625, 1.5], [2.25, 1.5]].
  // checksum = 2.625 + 1.5*1.125 + 2.25*1.25 + 1.5*1.375 = 9.1875.
  EXPECT_NEAR(run_trmm(2), 9.1875, 1e-12);
}

TEST(KernelCorrectness, CholeskyFactorIsFinitePositiveDiagonal) {
  // The SPD input guarantees the factorization completes (the internal
  // SOCRATES_ENSURE(diag > 0) would throw otherwise).
  EXPECT_NO_THROW(run_cholesky(24));
  EXPECT_TRUE(std::isfinite(run_cholesky(24)));
}

TEST(KernelCorrectness, LuOnTriangularInputIsStable) {
  const double a = run_lu(24);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_DOUBLE_EQ(a, run_lu(24));
}

TEST(KernelCorrectness, Heat3dStaysBounded) {
  // The stencil is an averaging operator with a source term; values
  // must stay finite and positive for the bounded initial field.
  const double c = run_heat_3d(12);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_GT(c, 0.0);
}

TEST(KernelCorrectness, RejectsTooSmallSizes) {
  EXPECT_THROW(run_2mm(1), ContractViolation);
  EXPECT_THROW(run_jacobi_2d(2), ContractViolation);
}

}  // namespace
}  // namespace socrates::kernels
