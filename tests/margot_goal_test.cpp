// Tests for the Goal abstraction (monitor-observing requirement checks).
#include <gtest/gtest.h>

#include "margot/goal.hpp"

namespace socrates::margot {
namespace {

TEST(Goal, EmptyMonitorIsTreatedAsMet) {
  CircularMonitor m(4);
  const Goal g(m, StatisticalProvider::kAverage, ComparisonOp::kLess, 10.0);
  EXPECT_TRUE(g.check());
  EXPECT_EQ(g.relative_error(), 0.0);
}

TEST(Goal, ChecksAverageProvider) {
  CircularMonitor m(4);
  Goal g(m, StatisticalProvider::kAverage, ComparisonOp::kLess, 10.0);
  m.push(4.0);
  m.push(8.0);
  EXPECT_TRUE(g.check());  // avg 6 < 10
  m.push(30.0);
  EXPECT_FALSE(g.check());  // avg 14
  EXPECT_NEAR(g.observed_value(), 14.0, 1e-12);
}

TEST(Goal, ProvidersSelectTheRightStatistic) {
  CircularMonitor m(8);
  for (const double v : {1.0, 5.0, 3.0}) m.push(v);
  EXPECT_DOUBLE_EQ(Goal(m, StatisticalProvider::kLast, ComparisonOp::kLess, 0)
                       .observed_value(),
                   3.0);
  EXPECT_DOUBLE_EQ(Goal(m, StatisticalProvider::kMin, ComparisonOp::kLess, 0)
                       .observed_value(),
                   1.0);
  EXPECT_DOUBLE_EQ(Goal(m, StatisticalProvider::kMax, ComparisonOp::kLess, 0)
                       .observed_value(),
                   5.0);
}

TEST(Goal, RelativeError) {
  CircularMonitor m(2);
  m.push(120.0);
  const Goal g(m, StatisticalProvider::kLast, ComparisonOp::kLessEqual, 100.0);
  EXPECT_FALSE(g.check());
  EXPECT_NEAR(g.relative_error(), 0.2, 1e-12);
}

TEST(Goal, DynamicTarget) {
  CircularMonitor m(2);
  m.push(120.0);
  Goal g(m, StatisticalProvider::kLast, ComparisonOp::kLessEqual, 100.0);
  EXPECT_FALSE(g.check());
  g.set_target(150.0);
  EXPECT_TRUE(g.check());
  EXPECT_EQ(g.target(), 150.0);
}

TEST(Goal, GreaterGoals) {
  CircularMonitor m(2);
  m.push(0.8);
  const Goal g(m, StatisticalProvider::kLast, ComparisonOp::kGreaterEqual, 1.0);
  EXPECT_FALSE(g.check());
  m.push(1.2);
  EXPECT_TRUE(g.check());
}

}  // namespace
}  // namespace socrates::margot
