// Tests for the defense layers: robust monitor statistics (median /
// MAD / Hampel filter), wraparound correction and invalid-sample
// rejection, AS-RTM quarantine with exponential backoff, the
// oscillation watchdog, runaway detection in the Context, and an
// end-to-end hardened-vs-raw comparison under injected faults.
#include <gtest/gtest.h>

#include <cmath>

#include "margot/context.hpp"
#include "margot/monitor.hpp"
#include "platform/fault_injection.hpp"
#include "socrates/adaptive_app.hpp"
#include "socrates/toolchain.hpp"
#include "support/error.hpp"

namespace socrates::margot {
namespace {

using M = ContextMetrics;

// ---- robust statistics -----------------------------------------------------

TEST(RobustStats, MedianOddAndEvenWindows) {
  CircularMonitor m(5);
  for (const double v : {5.0, 1.0, 3.0}) m.push(v);
  EXPECT_DOUBLE_EQ(m.median(), 3.0);
  m.push(2.0);  // {5, 1, 3, 2}: even count interpolates
  EXPECT_DOUBLE_EQ(m.median(), 2.5);
}

TEST(RobustStats, MadMeasuresRobustSpread) {
  CircularMonitor m(5);
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) m.push(v);
  EXPECT_DOUBLE_EQ(m.median(), 3.0);
  EXPECT_DOUBLE_EQ(m.mad(), 1.0);  // deviations {2,1,0,1,2}
}

TEST(RobustStats, AllIdenticalWindowHasZeroMad) {
  CircularMonitor m(4);
  for (int i = 0; i < 4; ++i) m.push(7.0);
  EXPECT_DOUBLE_EQ(m.median(), 7.0);
  EXPECT_DOUBLE_EQ(m.mad(), 0.0);
}

TEST(RobustStats, SingleSampleWindow) {
  CircularMonitor m(1);
  m.push(42.0);
  EXPECT_DOUBLE_EQ(m.median(), 42.0);
  EXPECT_DOUBLE_EQ(m.mad(), 0.0);
  m.push(43.0);  // wraps the one-slot buffer
  EXPECT_DOUBLE_EQ(m.median(), 43.0);
}

TEST(RobustStats, EmptyMonitorThrows) {
  CircularMonitor m(3);
  EXPECT_THROW(m.median(), ContractViolation);
  EXPECT_THROW(m.mad(), ContractViolation);
}

// ---- Hampel outlier filter -------------------------------------------------

TEST(HampelFilter, RejectsSpikeKeepsWindowClean) {
  CircularMonitor m(8);
  m.enable_outlier_filter({/*threshold=*/4.0, /*min_samples=*/3,
                           /*max_consecutive=*/3});
  for (const double v : {1.0, 1.1, 0.9, 1.0, 1.05}) EXPECT_TRUE(m.push(v));
  EXPECT_FALSE(m.push(50.0));  // a 50x spike is rejected
  EXPECT_EQ(m.outliers_rejected(), 1u);
  EXPECT_LT(m.max(), 2.0);     // the spike never entered the window
  EXPECT_TRUE(m.push(1.02));   // normal samples keep flowing
}

TEST(HampelFilter, ConcedesLevelShiftAfterConsecutiveFlags) {
  CircularMonitor m(8);
  m.enable_outlier_filter({4.0, 3, /*max_consecutive=*/2});
  for (const double v : {1.0, 1.1, 0.9, 1.0}) m.push(v);
  // A genuine level shift: every new sample sits at 10x the median.
  EXPECT_FALSE(m.push(10.0));
  EXPECT_FALSE(m.push(10.1));
  EXPECT_TRUE(m.push(10.05));  // third consecutive flag: accepted as a shift
  EXPECT_EQ(m.outliers_rejected(), 2u);
  EXPECT_DOUBLE_EQ(m.last(), 10.05);
}

TEST(HampelFilter, ZeroMadWindowNeverRejects) {
  CircularMonitor m(8);
  m.enable_outlier_filter({4.0, 3, 3});
  for (int i = 0; i < 4; ++i) m.push(5.0);
  EXPECT_TRUE(m.push(500.0));  // MAD == 0: no dispersion info, accept
  EXPECT_EQ(m.outliers_rejected(), 0u);
}

TEST(HampelFilter, BelowMinSamplesAcceptsEverything) {
  CircularMonitor m(8);
  m.enable_outlier_filter({4.0, /*min_samples=*/4, 3});
  m.push(1.0);
  m.push(1.1);
  m.push(0.9);
  EXPECT_TRUE(m.push(100.0));  // only 3 samples: filter stays silent
}

TEST(HampelFilter, ValidatesItsOptions) {
  CircularMonitor m(4);
  EXPECT_THROW(m.enable_outlier_filter({0.0, 3, 3}), ContractViolation);
  EXPECT_THROW(m.enable_outlier_filter({4.0, 0, 3}), ContractViolation);
  EXPECT_THROW(m.enable_outlier_filter({4.0, 3, 0}), ContractViolation);
}

// ---- hardened Energy/Power monitors ----------------------------------------

/// Clock whose reading the test sets directly (to fake jitter effects).
class ManualClock final : public platform::Clock {
 public:
  double now_s() const override { return now_; }
  void set(double t) { now_ = t; }

 private:
  double now_ = 0.0;
};

TEST(HardenedEnergyMonitor, CorrectsCounterWraparound) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  platform::FaultSchedule faults;
  const double wrap = 1e9;
  faults.add({platform::SensorFaultKind::kCounterWrap, 0.0, 1e9, wrap, 1.0});
  platform::FaultyEnergyCounter counter(rapl, clock, faults);

  EnergyMonitor mon(counter);
  mon.set_wrap_range_uj(wrap);
  rapl.accrue(9.0, 100.0);  // reading: 9e8 uJ, just below the wrap
  mon.start();
  rapl.accrue(2.0, 100.0);  // inner 1.1e9 uJ -> wrapped reading 1e8 uJ
  const double joules = mon.stop();
  EXPECT_DOUBLE_EQ(joules, 200.0);  // the true 200 J, recovered
  EXPECT_EQ(mon.wraps_corrected(), 1u);
  EXPECT_FALSE(mon.last_rejected());
}

TEST(HardenedEnergyMonitor, RejectsFailedRead) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  platform::FaultSchedule faults;
  faults.add({platform::SensorFaultKind::kReadFailure, 5.0, 1e9, 0.0, 1.0});
  platform::FaultyEnergyCounter counter(rapl, clock, faults);

  EnergyMonitor mon(counter);
  rapl.accrue(1.0, 100.0);
  mon.start();              // clean read at t=0
  clock.advance(10.0);      // the stop() read fails -> NaN
  rapl.accrue(1.0, 100.0);
  mon.stop();
  EXPECT_TRUE(mon.last_rejected());
  EXPECT_EQ(mon.rejected(), 1u);
  EXPECT_TRUE(mon.stats().empty());  // nothing poisoned the window
}

TEST(HardenedEnergyMonitor, RejectsStuckCounter) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  platform::FaultSchedule faults;
  faults.add({platform::SensorFaultKind::kStuckCounter, 0.0, 1e9, 0.0, 1.0});
  platform::FaultyEnergyCounter counter(rapl, clock, faults);

  EnergyMonitor mon(counter);
  mon.start();
  rapl.accrue(1.0, 100.0);  // real energy flows, the reading is frozen
  mon.stop();
  EXPECT_TRUE(mon.last_rejected());  // zero delta: not a valid sample
}

TEST(RawEnergyMonitor, RecordsGarbageVerbatim) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  platform::FaultSchedule faults;
  faults.add({platform::SensorFaultKind::kCounterWrap, 0.0, 1e9, 1e9, 1.0});
  platform::FaultyEnergyCounter counter(rapl, clock, faults);

  EnergyMonitor mon(counter);
  mon.set_hardened(false);
  rapl.accrue(9.0, 100.0);
  mon.start();
  rapl.accrue(2.0, 100.0);  // wrapped: delta is -8e8 uJ
  const double joules = mon.stop();
  EXPECT_DOUBLE_EQ(joules, -800.0);  // the unprotected stack records it
  EXPECT_FALSE(mon.last_rejected());
  EXPECT_EQ(mon.wraps_corrected(), 0u);
  EXPECT_DOUBLE_EQ(mon.stats().last(), -800.0);
}

TEST(HardenedPowerMonitor, CorrectsWrapAndRejectsNegativeElapsed) {
  ManualClock clock;
  platform::SimulatedRapl rapl;

  PowerMonitor mon(clock, rapl);
  mon.set_wrap_range_uj(1e9);

  // Jittery clock: the region appears to end before it started.
  rapl.accrue(1.0, 100.0);
  clock.set(10.0);
  mon.start();
  rapl.accrue(1.0, 100.0);
  clock.set(9.5);
  mon.stop();
  EXPECT_TRUE(mon.last_rejected());
  EXPECT_TRUE(mon.stats().empty());

  // Zero-length region is a caller bug, not a sensor fault.
  mon.start();
  EXPECT_THROW(mon.stop(), ContractViolation);
}

// ---- AS-RTM quarantine -----------------------------------------------------

KnowledgeBase tiny_kb() {
  KnowledgeBase kb({"config", "threads"}, {"exec_time_s", "power_w", "throughput"});
  kb.add(OperatingPoint{{0, 1}, {{10.0, 0.5}, {50.0, 1.0}, {0.1, 0.005}}});
  kb.add(OperatingPoint{{1, 8}, {{4.0, 0.2}, {80.0, 2.0}, {0.25, 0.0125}}});
  kb.add(OperatingPoint{{2, 32}, {{1.0, 0.05}, {140.0, 3.0}, {1.0, 0.05}}});
  return kb;
}

TEST(Quarantine, FailureStreakExcludesThePoint) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(2));
  asrtm.set_quarantine_options({/*failure_threshold=*/2, /*base_cooldown=*/4, 64});
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);

  asrtm.report_variant_failure(2);
  EXPECT_FALSE(asrtm.is_quarantined(2));  // one failure is forgiven
  asrtm.report_variant_failure(2);
  EXPECT_TRUE(asrtm.is_quarantined(2));
  EXPECT_EQ(asrtm.quarantined_count(), 1u);
  EXPECT_EQ(asrtm.quarantine_events(), 1u);
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);  // next-best survivor
  EXPECT_TRUE(asrtm.last_selection_feasible());
}

TEST(Quarantine, SuccessResetsTheStreak) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_quarantine_options({2, 4, 64});
  asrtm.report_variant_failure(2);
  asrtm.report_variant_success(2);
  asrtm.report_variant_failure(2);
  EXPECT_FALSE(asrtm.is_quarantined(2));  // never two *consecutive* failures
}

TEST(Quarantine, CooldownExpiresIntoProbationAndBacksOffExponentially) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(2));
  asrtm.set_quarantine_options({2, /*base_cooldown=*/2, /*max_cooldown=*/8});

  asrtm.report_variant_failure(2);
  asrtm.report_variant_failure(2);  // quarantined for 2 iterations
  asrtm.advance_quarantine();
  EXPECT_TRUE(asrtm.is_quarantined(2));
  asrtm.advance_quarantine();
  EXPECT_FALSE(asrtm.is_quarantined(2));  // cooldown over: on probation
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);

  // One failure during probation re-quarantines at once, doubled.
  asrtm.report_variant_failure(2);
  EXPECT_TRUE(asrtm.is_quarantined(2));
  EXPECT_EQ(asrtm.quarantine_events(), 2u);
  for (int i = 0; i < 3; ++i) {
    asrtm.advance_quarantine();
    EXPECT_TRUE(asrtm.is_quarantined(2));  // 4-iteration cooldown now
  }
  asrtm.advance_quarantine();
  EXPECT_FALSE(asrtm.is_quarantined(2));

  // A third quarantine hits the max_cooldown ceiling (8, not 16).
  asrtm.report_variant_failure(2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(asrtm.is_quarantined(2));
    asrtm.advance_quarantine();
  }
  EXPECT_FALSE(asrtm.is_quarantined(2));
}

TEST(Quarantine, AllQuarantinedFallsBackToSafestPoint) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(2));
  asrtm.set_quarantine_options({1, 8, 64});

  asrtm.report_variant_failure(0);
  asrtm.advance_quarantine();       // op0 now has the shortest cooldown
  asrtm.report_variant_failure(1);
  asrtm.report_variant_failure(2);
  asrtm.report_variant_failure(2);  // op2 now quarantined twice
  EXPECT_EQ(asrtm.quarantined_count(), 3u);

  // Everything is down: pick the least-requarantined, shortest-cooldown
  // point and flag the selection as degraded.
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  EXPECT_FALSE(asrtm.last_selection_feasible());
}

TEST(Quarantine, ValidatesOptions) {
  Asrtm asrtm(tiny_kb());
  EXPECT_THROW(asrtm.set_quarantine_options({0, 8, 64}), ContractViolation);
  EXPECT_THROW(asrtm.set_quarantine_options({2, 0, 64}), ContractViolation);
  EXPECT_THROW(asrtm.set_quarantine_options({2, 8, 4}), ContractViolation);
  EXPECT_THROW(asrtm.report_variant_failure(99), ContractViolation);
}

// ---- oscillation watchdog --------------------------------------------------

TEST(Watchdog, TripsOnThrashingAndHoldsThePoint) {
  OscillationWatchdog dog({/*window=*/6, /*max_switches=*/2, /*hold=*/4});
  EXPECT_EQ(dog.filter(0), 0u);  // first application
  EXPECT_EQ(dog.filter(1), 1u);  // switch 1
  EXPECT_EQ(dog.filter(0), 0u);  // switch 2
  EXPECT_EQ(dog.filter(1), 0u);  // switch 3 in window: trip, hold 0
  EXPECT_TRUE(dog.holding());
  EXPECT_EQ(dog.trips(), 1u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(dog.filter(1), 0u);  // hold-down
  EXPECT_FALSE(dog.holding());
  EXPECT_EQ(dog.filter(1), 1u);  // listening again
}

TEST(Watchdog, StableSelectionNeverTrips) {
  OscillationWatchdog dog({6, 2, 4});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(dog.filter(3), 3u);
  EXPECT_EQ(dog.trips(), 0u);
}

TEST(Watchdog, OccasionalSwitchesPassThrough) {
  OscillationWatchdog dog({/*window=*/4, /*max_switches=*/2, /*hold=*/4});
  std::size_t current = 0;
  for (int i = 0; i < 40; ++i) {
    if (i % 10 == 9) current = 1 - current;  // one switch per 10 iterations
    EXPECT_EQ(dog.filter(current), current);
  }
  EXPECT_EQ(dog.trips(), 0u);
}

TEST(Watchdog, ResetClearsHistory) {
  OscillationWatchdog dog({6, 2, 4});
  dog.filter(0);
  dog.filter(1);
  dog.filter(0);
  dog.filter(1);  // trips
  EXPECT_TRUE(dog.holding());
  dog.reset();
  EXPECT_FALSE(dog.holding());
  EXPECT_EQ(dog.filter(5), 5u);
}

// ---- Context-level runaway detection ---------------------------------------

KnowledgeBase ctx_kb() {
  KnowledgeBase kb({"config", "threads", "binding"}, ContextMetrics::names());
  kb.add(OperatingPoint{{0, 1, 0}, {{2.0, 0.1}, {55.0, 1.0}, {0.5, 0.02}}});
  kb.add(OperatingPoint{{1, 16, 0}, {{0.5, 0.02}, {120.0, 2.0}, {2.0, 0.1}}});
  return kb;
}

TEST(ContextRunaway, GarbageExecTimeQuarantinesInsteadOfPoisoning) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  Context ctx(ctx_kb(), clock, rapl);
  ctx.asrtm().set_rank(Rank::maximize_throughput(M::kThroughput));
  RobustnessOptions rob;
  rob.variant_quarantine = true;
  rob.runaway_factor = 8.0;
  rob.quarantine = {/*failure_threshold=*/2, 8, 64};
  ctx.set_robustness(rob);

  std::vector<int> knobs(3);
  for (int i = 0; i < 2; ++i) {
    ctx.update(knobs);  // selects op1 (exec_time mean 0.5 s)
    ctx.start_monitors();
    clock.advance(25.0);  // 50x the expectation: a garbage clone
    rapl.accrue(25.0, 120.0);
    ctx.stop_monitors();
  }
  EXPECT_TRUE(ctx.asrtm().is_quarantined(1));
  // The runaway samples were *not* fed into the corrections.
  EXPECT_DOUBLE_EQ(ctx.asrtm().correction(M::kExecTime), 1.0);
}

TEST(ContextRunaway, HealthyRunsClearTheStreak) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  Context ctx(ctx_kb(), clock, rapl);
  ctx.asrtm().set_rank(Rank::maximize_throughput(M::kThroughput));
  RobustnessOptions rob;
  rob.variant_quarantine = true;
  ctx.set_robustness(rob);

  std::vector<int> knobs(3);
  const double steps[] = {25.0, 0.5, 25.0};  // runaway, healthy, runaway
  for (const double dt : steps) {
    ctx.update(knobs);
    ctx.start_monitors();
    clock.advance(dt);
    rapl.accrue(dt, 120.0);
    ctx.stop_monitors();
  }
  EXPECT_FALSE(ctx.asrtm().is_quarantined(1));
}

}  // namespace
}  // namespace socrates::margot

// ---- end-to-end: hardened vs raw under a hostile machine -------------------

namespace socrates {
namespace {

using M = margot::ContextMetrics;

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

AdaptiveApplication make_app() {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Toolchain tc(model(), opts);
  return AdaptiveApplication(tc.build("2mm"), model(), opts.work_scale);
}

platform::FaultSchedule hostile_schedule() {
  platform::FaultSchedule faults;
  // Wrap the energy register every 20 J so power/energy deltas straddle
  // wraps all the time at this work scale.
  faults.add({platform::SensorFaultKind::kCounterWrap, 2.0, 1e9, /*uJ=*/2e7, 1.0});
  faults.add({platform::SensorFaultKind::kSpike, 2.0, 1e9, /*uJ=*/5e7, 0.3});
  faults.add({platform::SensorFaultKind::kReadFailure, 2.0, 1e9, 0.0, 0.1});
  return faults;
}

double run(AdaptiveApplication& app, std::vector<TraceSample>& trace) {
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  app.set_faults(hostile_schedule());
  app.run_until(40.0, trace);
  double violations = 0.0;
  for (const auto& s : trace)
    if (s.power_w > 106.0) violations += 1.0;
  return violations / static_cast<double>(trace.size());
}

TEST(EndToEnd, HardenedStackSurvivesSensorFaults) {
  auto hardened = make_app();
  hardened.harden();
  std::vector<TraceSample> htrace;
  const double hardened_violations = run(hardened, htrace);

  auto raw = make_app();
  raw.set_robustness(margot::RobustnessOptions::raw());
  std::vector<TraceSample> rtrace;
  const double raw_violations = run(raw, rtrace);

  // The hardened stack never lets a corrupted sample through: every
  // observation in its trace is finite and non-negative.
  for (const auto& s : htrace) {
    if (s.crashed) continue;
    EXPECT_TRUE(std::isfinite(s.observed_time_s));
    EXPECT_TRUE(std::isfinite(s.observed_power_w));
    EXPECT_TRUE(std::isfinite(s.observed_energy_j));
    EXPECT_GE(s.observed_time_s, 0.0);
    EXPECT_GE(s.observed_power_w, 0.0);
    EXPECT_GE(s.observed_energy_j, 0.0);
  }
  // The raw stack recorded at least one corrupted observation (wrapped
  // counters produce negative energies at this fault rate).
  bool raw_saw_garbage = false;
  for (const auto& s : rtrace)
    raw_saw_garbage = raw_saw_garbage ||
                      !std::isfinite(s.observed_power_w) || s.observed_power_w < 0.0 ||
                      !std::isfinite(s.observed_energy_j) || s.observed_energy_j < 0.0;
  EXPECT_TRUE(raw_saw_garbage);
  // And paid for it in goal violations.
  EXPECT_LE(hardened_violations, raw_violations);
}

}  // namespace
}  // namespace socrates
