// Tests for machine topology, thread placement and the flag space.
#include <gtest/gtest.h>

#include "platform/flags.hpp"
#include "platform/topology.hpp"
#include "support/error.hpp"

namespace socrates::platform {
namespace {

const MachineTopology kXeon = MachineTopology::xeon_e5_2630_v3();

TEST(Topology, PaperPlatformShape) {
  EXPECT_EQ(kXeon.sockets, 2u);
  EXPECT_EQ(kXeon.physical_cores(), 16u);
  EXPECT_EQ(kXeon.logical_cores(), 32u);
}

TEST(Placement, CloseFillsSocketZeroFirst) {
  const auto p = place_threads(kXeon, 8, BindingPolicy::kClose);
  for (const auto& t : p) EXPECT_EQ(t.socket, 0u);
  const auto s = summarize(kXeon, p);
  EXPECT_EQ(s.sockets_used, 1u);
  EXPECT_EQ(s.cores_used, 8u);
  EXPECT_EQ(s.cores_with_two, 0u);
}

TEST(Placement, CloseSpillsToSecondSocketAfterEight) {
  const auto s = summarize(kXeon, place_threads(kXeon, 9, BindingPolicy::kClose));
  EXPECT_EQ(s.sockets_used, 2u);
  EXPECT_EQ(s.cores_per_socket_used[0], 8u);
  EXPECT_EQ(s.cores_per_socket_used[1], 1u);
}

TEST(Placement, SpreadAlternatesSockets) {
  const auto p = place_threads(kXeon, 2, BindingPolicy::kSpread);
  EXPECT_NE(p[0].socket, p[1].socket);
  const auto s = summarize(kXeon, p);
  EXPECT_EQ(s.sockets_used, 2u);
}

TEST(Placement, SpreadBalancesSockets) {
  for (const std::size_t n : {4u, 6u, 10u, 16u}) {
    const auto s = summarize(kXeon, place_threads(kXeon, n, BindingPolicy::kSpread));
    EXPECT_LE(s.cores_per_socket_used[0] - s.cores_per_socket_used[1], 1u) << n;
  }
}

TEST(Placement, HyperthreadsOnlyAfterAllCores) {
  for (const auto policy : {BindingPolicy::kClose, BindingPolicy::kSpread}) {
    const auto s16 = summarize(kXeon, place_threads(kXeon, 16, policy));
    EXPECT_EQ(s16.cores_with_two, 0u);
    const auto s17 = summarize(kXeon, place_threads(kXeon, 17, policy));
    EXPECT_EQ(s17.cores_with_two, 1u);
    const auto s32 = summarize(kXeon, place_threads(kXeon, 32, policy));
    EXPECT_EQ(s32.cores_with_two, 16u);
  }
}

TEST(Placement, EveryThreadPlacedExactlyOnce) {
  for (std::size_t n = 1; n <= kXeon.logical_cores(); ++n) {
    for (const auto policy : {BindingPolicy::kClose, BindingPolicy::kSpread}) {
      const auto p = place_threads(kXeon, n, policy);
      EXPECT_EQ(p.size(), n);
      const auto s = summarize(kXeon, p);
      EXPECT_EQ(s.threads, n);
      EXPECT_LE(s.cores_used, kXeon.physical_cores());
    }
  }
}

TEST(Placement, RejectsBadThreadCounts) {
  EXPECT_THROW(place_threads(kXeon, 0, BindingPolicy::kClose), ContractViolation);
  EXPECT_THROW(place_threads(kXeon, 33, BindingPolicy::kClose), ContractViolation);
}

TEST(Binding, StringRoundTrip) {
  EXPECT_EQ(binding_from_string("close"), BindingPolicy::kClose);
  EXPECT_EQ(binding_from_string("spread"), BindingPolicy::kSpread);
  EXPECT_STREQ(to_string(BindingPolicy::kSpread), "spread");
  EXPECT_THROW(binding_from_string("master"), ContractViolation);
}

// ---- flag space -----------------------------------------------------------------

TEST(Flags, PragmaOptionsFormat) {
  const FlagConfig c =
      FlagConfig(OptLevel::kO2).with(Flag::kNoInline).with(Flag::kUnrollAllLoops);
  EXPECT_EQ(c.pragma_options(), "O2,no-inline-functions,unroll-all-loops");
}

TEST(Flags, ParseRoundTrip) {
  for (const auto& named : reduced_design_space()) {
    const FlagConfig parsed = FlagConfig::parse(named.config.pragma_options());
    EXPECT_EQ(parsed, named.config) << named.name;
  }
}

TEST(Flags, ParseAcceptsPaperAbbreviation) {
  const FlagConfig c = FlagConfig::parse("O2,no-inline");
  EXPECT_TRUE(c.has(Flag::kNoInline));
}

TEST(Flags, ParseRejectsUnknown) {
  EXPECT_THROW(FlagConfig::parse("O7"), ContractViolation);
  EXPECT_THROW(FlagConfig::parse("O2,funroll-everything"), ContractViolation);
}

TEST(Flags, PaperCustomConfigsMatchSectionIII) {
  const auto cfs = paper_custom_configs();
  ASSERT_EQ(cfs.size(), 4u);
  // CF1: O3, no-guess-branch-probability, no-ivopts, no-tree-loop-optimize, no-inline
  EXPECT_EQ(cfs[0].config.level(), OptLevel::kO3);
  EXPECT_TRUE(cfs[0].config.has(Flag::kNoGuessBranchProb));
  EXPECT_TRUE(cfs[0].config.has(Flag::kNoIvopts));
  EXPECT_TRUE(cfs[0].config.has(Flag::kNoTreeLoopOptimize));
  EXPECT_TRUE(cfs[0].config.has(Flag::kNoInline));
  EXPECT_FALSE(cfs[0].config.has(Flag::kUnrollAllLoops));
  // CF4: O2, no-inline
  EXPECT_EQ(cfs[3].config.level(), OptLevel::kO2);
  EXPECT_EQ(cfs[3].config.flag_bits(),
            FlagConfig(OptLevel::kO2).with(Flag::kNoInline).flag_bits());
}

TEST(Flags, CobaynSpaceHas128DistinctPoints) {
  const auto space = cobayn_search_space();
  EXPECT_EQ(space.size(), 128u);
  for (std::size_t i = 0; i < space.size(); ++i)
    for (std::size_t j = i + 1; j < space.size(); ++j)
      EXPECT_FALSE(space[i] == space[j]) << i << "," << j;
}

TEST(Flags, ReducedSpaceIsEightNamedConfigs) {
  const auto space = reduced_design_space();
  ASSERT_EQ(space.size(), 8u);
  EXPECT_EQ(space[0].name, "Os");
  EXPECT_EQ(space[3].name, "O3");
  EXPECT_EQ(space[4].name, "CF1");
  EXPECT_EQ(space[7].name, "CF4");
}

}  // namespace
}  // namespace socrates::platform
