// Tests for the server's bounded lock-free feedback ring
// (server/mpsc_ring.hpp): FIFO semantics, batch drain, the three
// backpressure policies at the full-ring boundary, and multi-producer
// stress runs whose accounting invariants also run under the TSan
// preset (CMakePresets.json, `tsan`).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "server/mpsc_ring.hpp"
#include "support/error.hpp"

namespace socrates::server {
namespace {

TEST(MpscRing, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(100).capacity(), 128u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
  EXPECT_THROW(MpscRing<int>(1), ContractViolation);
}

TEST(MpscRing, FifoOrderSingleThread) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.approx_size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, FullRingRefusesPush) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(99));  // space freed, push works again
}

TEST(MpscRing, BatchDrainPreservesOrder) {
  MpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  int batch[6];
  ASSERT_EQ(ring.pop_batch(batch, 6), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(batch[i], i);
  ASSERT_EQ(ring.pop_batch(batch, 6), 4u);  // only 4 left
  for (int i = 0; i < 4; ++i) EXPECT_EQ(batch[i], i + 6);
}

TEST(MpscRing, WrapAroundKeepsFifo) {
  MpscRing<int> ring(4);
  int out = -1;
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(ring.try_push(2 * round));
    ASSERT_TRUE(ring.try_push(2 * round + 1));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 2 * round);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, 2 * round + 1);
  }
}

// ---- backpressure policies at the full-ring boundary -------------------------------

TEST(MpscRing, RejectPolicyFailsWithoutShedding) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  const PushResult result = push_with_policy(ring, 99, BackpressurePolicy::kReject);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(ring.approx_size(), 4u);  // untouched
}

TEST(MpscRing, DropOldestPolicyEvictsTheOldestEntry) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  const PushResult result = push_with_policy(ring, 99, BackpressurePolicy::kDropOldest);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.shed, 1u);
  // 0 (the oldest) is gone; 1, 2, 3, 99 remain in order.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
}

TEST(MpscRing, BlockPolicyWaitsForSpace) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  std::thread consumer([&ring] {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));  // frees one slot; the push unblocks
  });
  const PushResult result = push_with_policy(ring, 99, BackpressurePolicy::kBlock);
  consumer.join();
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.shed, 0u);
}

TEST(MpscRing, BlockPolicyAbortsOnShutdown) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(i));
  std::atomic<bool> abort{true};
  const PushResult result =
      push_with_policy(ring, 99, BackpressurePolicy::kBlock, &abort);
  EXPECT_FALSE(result.accepted);  // bailed out instead of spinning forever
}

// ---- concurrency stress (run these under the tsan preset) --------------------------

TEST(MpscRing, ConcurrentProducersAccountForEveryPush) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(256);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> drained{0};
  std::vector<std::uint64_t> per_producer_max(kProducers, 0);

  std::thread consumer([&] {
    std::uint64_t batch[64];
    while (!stop.load(std::memory_order_acquire) || !ring.empty()) {
      const std::size_t n = ring.pop_batch(batch, 64);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t producer = batch[i] >> 32;
        const std::uint64_t seq = batch[i] & 0xffffffffu;
        // Per-producer order must survive interleaving: the consumer is
        // single, so each producer's values arrive strictly increasing.
        EXPECT_GT(seq + 1, per_producer_max[producer]);
        per_producer_max[producer] = seq + 1;
      }
      drained.fetch_add(n, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = (static_cast<std::uint64_t>(p) << 32) | i;
        push_with_policy(ring, value, BackpressurePolicy::kBlock);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(drained.load(), kProducers * kPerProducer);  // block loses nothing
}

TEST(MpscRing, ConcurrentDropOldestConservesEvents) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 4000;
  MpscRing<std::uint64_t> ring(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> drained{0};

  std::thread consumer([&] {
    std::uint64_t batch[32];
    while (!stop.load(std::memory_order_acquire) || !ring.empty()) {
      const std::size_t n = ring.pop_batch(batch, 32);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      drained.fetch_add(n, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const PushResult result =
            push_with_policy(ring, i, BackpressurePolicy::kDropOldest);
        ASSERT_TRUE(result.accepted);  // drop-oldest always lands eventually
        shed.fetch_add(result.shed, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();
  // Conservation: every accepted push was either drained or shed.
  EXPECT_EQ(drained.load() + shed.load(), kProducers * kPerProducer);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, ConcurrentRejectNeverLosesAcceptedEvents) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 4000;
  MpscRing<std::uint64_t> ring(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> drained{0};

  std::thread consumer([&] {
    std::uint64_t batch[32];
    while (!stop.load(std::memory_order_acquire) || !ring.empty()) {
      const std::size_t n = ring.pop_batch(batch, 32);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      drained.fetch_add(n, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const PushResult result =
            push_with_policy(ring, i, BackpressurePolicy::kReject);
        if (result.accepted) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(drained.load(), accepted.load());  // accepted events all arrive
}

TEST(MpscRing, SeededBatchDrainOrderIsDeterministic) {
  // A single producer pushing a seeded sequence must drain back in
  // exactly that sequence, run after run — the shard worker relies on
  // this to keep replayed feedback byte-identical across reruns.
  const auto run = [] {
    MpscRing<std::uint64_t> ring(128);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;  // fixed seed
    std::vector<std::uint64_t> drained;
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 100; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        push_with_policy(ring, x, BackpressurePolicy::kBlock);
      }
      std::uint64_t batch[100];
      const std::size_t n = ring.pop_batch(batch, 100);
      drained.insert(drained.end(), batch, batch + n);
    }
    return drained;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace socrates::server
