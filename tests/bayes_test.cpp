// Tests for the Bayesian-network engine: discretizer, CPT fitting,
// inference, sampling and K2 structure learning.
#include <gtest/gtest.h>

#include <cmath>

#include "bayes/discretizer.hpp"
#include "bayes/network.hpp"
#include "bayes/structure_learning.hpp"
#include "support/error.hpp"

namespace socrates::bayes {
namespace {

// ---- Discretizer -------------------------------------------------------------

TEST(Discretizer, EqualFrequencyBins) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 90; ++i) rows.push_back({static_cast<double>(i)});
  Discretizer d;
  d.fit(rows, 3);
  EXPECT_EQ(d.columns(), 1u);
  EXPECT_EQ(d.cardinality(0), 3u);
  EXPECT_EQ(d.transform(0, 0.0), 0u);
  EXPECT_EQ(d.transform(0, 45.0), 1u);
  EXPECT_EQ(d.transform(0, 89.0), 2u);
}

TEST(Discretizer, ConstantColumnCollapsesToOneBin) {
  std::vector<std::vector<double>> rows(20, std::vector<double>{7.0});
  Discretizer d;
  d.fit(rows, 4);
  EXPECT_EQ(d.cardinality(0), 1u);
  EXPECT_EQ(d.transform(0, 7.0), 0u);
  EXPECT_EQ(d.transform(0, -100.0), 0u);
}

TEST(Discretizer, OutOfRangeValuesClampToEdgeBins) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({static_cast<double>(i)});
  Discretizer d;
  d.fit(rows, 3);
  EXPECT_EQ(d.transform(0, -5.0), 0u);
  EXPECT_EQ(d.transform(0, 1e9), d.cardinality(0) - 1);
}

TEST(Discretizer, TransformRowChecksWidth) {
  Discretizer d;
  d.fit({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}}, 2);
  EXPECT_THROW(d.transform_row({1.0}), ContractViolation);
  EXPECT_EQ(d.transform_row({1.0, 6.0}).size(), 2u);
}

// ---- BayesNet ------------------------------------------------------------------

std::vector<Variable> two_binary() {
  return {Variable{"a", 2}, Variable{"b", 2}};
}

TEST(BayesNet, RejectsCycles) {
  BayesNet net(two_binary());
  net.add_edge(0, 1);
  EXPECT_THROW(net.add_edge(1, 0), ContractViolation);
  EXPECT_THROW(net.add_edge(0, 0), ContractViolation);
}

TEST(BayesNet, RejectsDuplicateEdges) {
  BayesNet net(two_binary());
  net.add_edge(0, 1);
  EXPECT_THROW(net.add_edge(0, 1), ContractViolation);
}

TEST(BayesNet, IndexOfByName) {
  BayesNet net({Variable{"x", 2}, Variable{"y", 3}});
  EXPECT_EQ(net.index_of("y"), 1u);
  EXPECT_THROW(net.index_of("zzz"), ContractViolation);
}

TEST(BayesNet, FitRecoversMarginal) {
  BayesNet net({Variable{"coin", 2}});
  Dataset data;
  for (int i = 0; i < 75; ++i) data.push_back({1});
  for (int i = 0; i < 25; ++i) data.push_back({0});
  net.fit(data, 1.0);
  // Laplace: P(1) = 76/102
  EXPECT_NEAR(net.conditional(0, {1}), 76.0 / 102.0, 1e-12);
}

TEST(BayesNet, FitRecoversConditional) {
  BayesNet net(two_binary());
  net.add_edge(0, 1);
  Dataset data;
  // b copies a, 40 samples each side.
  for (int i = 0; i < 40; ++i) {
    data.push_back({0, 0});
    data.push_back({1, 1});
  }
  net.fit(data, 0.5);
  EXPECT_GT(net.conditional(1, {0, 0}), 0.95);
  EXPECT_GT(net.conditional(1, {1, 1}), 0.95);
  EXPECT_LT(net.conditional(1, {0, 1}), 0.05);
}

TEST(BayesNet, LogJointIsSumOfLogs) {
  BayesNet net(two_binary());
  net.add_edge(0, 1);
  Dataset data = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  net.fit(data);
  const FullAssignment a = {1, 0};
  EXPECT_NEAR(net.log_joint(a),
              std::log(net.conditional(0, a)) + std::log(net.conditional(1, a)), 1e-12);
}

TEST(BayesNet, PosteriorSumsToOne) {
  BayesNet net({Variable{"f", 3}, Variable{"x", 2}, Variable{"y", 2}});
  net.add_edge(0, 1);
  net.add_edge(1, 2);
  Dataset data;
  Rng rng(4);
  for (int i = 0; i < 100; ++i)
    data.push_back({static_cast<std::size_t>(rng.uniform_int(0, 2)),
                    static_cast<std::size_t>(rng.uniform_int(0, 1)),
                    static_cast<std::size_t>(rng.uniform_int(0, 1))});
  net.fit(data);
  Assignment evidence(3, std::nullopt);
  evidence[0] = 1;
  const auto post = net.posterior_over({1, 2}, evidence);
  ASSERT_EQ(post.size(), 4u);
  double sum = 0.0;
  for (const double p : post) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BayesNet, PosteriorTracksDependence) {
  BayesNet net(two_binary());
  net.add_edge(0, 1);
  Dataset data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({0, 0});
    data.push_back({1, 1});
  }
  net.fit(data, 0.1);
  Assignment evidence(2, std::nullopt);
  evidence[0] = 1;
  const auto post = net.posterior_over({1}, evidence);
  EXPECT_GT(post[1], 0.95);  // P(b=1 | a=1)
}

TEST(BayesNet, PosteriorRejectsBadQueryPartition) {
  BayesNet net(two_binary());
  net.fit({{0, 0}, {1, 1}});
  Assignment evidence(2, std::nullopt);
  evidence[0] = 1;
  // Variable 0 is both evidence and query -> contract violation.
  EXPECT_THROW(net.posterior_over({0, 1}, evidence), ContractViolation);
  // Variable 1 is neither -> also a violation.
  EXPECT_THROW(net.posterior_over({}, evidence), ContractViolation);
}

TEST(BayesNet, SamplingMatchesMarginals) {
  BayesNet net(two_binary());
  net.add_edge(0, 1);
  Dataset data;
  for (int i = 0; i < 80; ++i) data.push_back({1, 1});
  for (int i = 0; i < 20; ++i) data.push_back({0, 0});
  net.fit(data, 0.01);
  Rng rng(21);
  int ones = 0;
  for (int i = 0; i < 5000; ++i) ones += static_cast<int>(net.sample(rng)[0]);
  EXPECT_NEAR(ones / 5000.0, 0.8, 0.03);
}

TEST(BayesNet, TopologicalOrderRespectsEdges) {
  BayesNet net({Variable{"a", 2}, Variable{"b", 2}, Variable{"c", 2}, Variable{"d", 2}});
  net.add_edge(0, 1);
  net.add_edge(0, 2);
  net.add_edge(1, 3);
  net.add_edge(2, 3);
  const auto order = net.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(BayesNet, ParameterCount) {
  BayesNet net({Variable{"a", 3}, Variable{"b", 2}});
  net.add_edge(0, 1);
  // a: 2 free params; b: 3 rows x 1 free = 3.
  EXPECT_EQ(net.parameter_count(), 5u);
}

// ---- structure learning ---------------------------------------------------------

TEST(K2, RecoversStrongDependence) {
  // y = x (strong), z independent noise.
  Rng rng(17);
  std::vector<Variable> vars = {Variable{"x", 2}, Variable{"y", 2}, Variable{"z", 2}};
  Dataset data;
  for (int i = 0; i < 300; ++i) {
    const std::size_t x = static_cast<std::size_t>(rng.uniform_int(0, 1));
    const std::size_t y = rng.uniform() < 0.95 ? x : 1 - x;
    const std::size_t z = static_cast<std::size_t>(rng.uniform_int(0, 1));
    data.push_back({x, y, z});
  }
  const BayesNet net = k2_search(vars, data, {0, 1, 2});
  ASSERT_EQ(net.parents(1).size(), 1u);
  EXPECT_EQ(net.parents(1)[0], 0u);
  EXPECT_TRUE(net.parents(2).empty());  // no spurious edge to noise
}

TEST(K2, RespectsMaxParents) {
  Rng rng(19);
  std::vector<Variable> vars;
  for (int i = 0; i < 5; ++i) vars.push_back(Variable{"v" + std::to_string(i), 2});
  Dataset data;
  for (int i = 0; i < 400; ++i) {
    FullAssignment row(5);
    for (int v = 0; v < 4; ++v) row[v] = static_cast<std::size_t>(rng.uniform_int(0, 1));
    row[4] = (row[0] ^ row[1] ^ row[2] ^ row[3]) != 0 ? 1u : 0u;
    data.push_back(row);
  }
  K2Options opts;
  opts.max_parents = 2;
  const BayesNet net = k2_search(vars, data, {0, 1, 2, 3, 4}, opts);
  EXPECT_LE(net.parents(4).size(), 2u);
}

TEST(K2, BicPenalizesComplexity) {
  // With almost no data, adding parents must not pay off.
  std::vector<Variable> vars = {Variable{"a", 2}, Variable{"b", 2}};
  Dataset data = {{0, 0}, {1, 1}, {0, 1}, {1, 0}};
  const BayesNet net = k2_search(vars, data, {0, 1});
  EXPECT_TRUE(net.parents(1).empty());
}

TEST(K2, NetworkScoreImprovesWithRightEdge) {
  Rng rng(23);
  std::vector<Variable> vars = {Variable{"x", 2}, Variable{"y", 2}};
  Dataset data;
  for (int i = 0; i < 200; ++i) {
    const std::size_t x = static_cast<std::size_t>(rng.uniform_int(0, 1));
    data.push_back({x, x});
  }
  BayesNet with_edge(vars);
  with_edge.add_edge(0, 1);
  with_edge.fit(data);
  BayesNet without(vars);
  without.fit(data);
  EXPECT_GT(network_bic_score(with_edge, data), network_bic_score(without, data));
}

}  // namespace
}  // namespace socrates::bayes
