// Tests for the scripted scenario runner.
#include <gtest/gtest.h>

#include "margot/state_manager.hpp"
#include "socrates/scenario.hpp"
#include "socrates/toolchain.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

using M = margot::ContextMetrics;

AdaptiveApplication make_app() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 2;
  opts.work_scale = 0.02;
  Toolchain tc(kModel, opts);
  return AdaptiveApplication(tc.build("2mm"), kModel, opts.work_scale);
}

TEST(Scenario, EventsFireInTimeOrder) {
  auto app = make_app();
  app.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));

  std::vector<int> order;
  Scenario scenario;
  scenario.at(6.0, "second", [&](AdaptiveApplication&) { order.push_back(2); })
      .at(2.0, "first", [&](AdaptiveApplication&) { order.push_back(1); })
      .at(9.0, "third", [&](AdaptiveApplication&) { order.push_back(3); });
  const auto trace = scenario.run(app, 12.0);

  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scenario.fired(),
            (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_FALSE(trace.empty());
  EXPECT_GE(app.now_s(), 12.0);
}

TEST(Scenario, EventsBeyondDurationDoNotFire) {
  auto app = make_app();
  app.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  bool fired = false;
  Scenario scenario;
  scenario.at(50.0, "too late", [&](AdaptiveApplication&) { fired = true; });
  scenario.run(app, 10.0);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(scenario.fired().empty());
}

TEST(Scenario, StateSwitchEventChangesBehaviour) {
  auto app = make_app();
  margot::StateManager states(app.asrtm());
  states.define_state(
      "energy", {},
      margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  states.define_state("performance", {},
                      margot::Rank::maximize_throughput(M::kThroughput));

  Scenario scenario;
  scenario.at(10.0, "go fast",
              [&](AdaptiveApplication&) { states.switch_to("performance"); });
  const auto trace = scenario.run(app, 20.0);

  double power_before = 0.0, power_after = 0.0;
  std::size_t n_before = 0, n_after = 0;
  for (const auto& s : trace) {
    if (s.timestamp_s < 9.5) {
      power_before += s.power_w;
      ++n_before;
    } else if (s.timestamp_s > 11.0) {
      power_after += s.power_w;
      ++n_after;
    }
  }
  ASSERT_GT(n_before, 0u);
  ASSERT_GT(n_after, 0u);
  EXPECT_GT(power_after / n_after, (power_before / n_before) * 1.2);
}

TEST(Scenario, RelativeToCurrentTime) {
  // A scenario can run twice on the same app: times are relative.
  auto app = make_app();
  app.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  int fires = 0;
  Scenario scenario;
  scenario.at(1.0, "tick", [&](AdaptiveApplication&) { ++fires; });
  scenario.run(app, 3.0);
  scenario.run(app, 3.0);
  EXPECT_EQ(fires, 2);
  EXPECT_GE(app.now_s(), 6.0);
}

TEST(Scenario, ContractChecks) {
  Scenario scenario;
  EXPECT_THROW(scenario.at(-1.0, "bad", [](AdaptiveApplication&) {}),
               ContractViolation);
  EXPECT_THROW(scenario.at(1.0, "null", nullptr), ContractViolation);
  auto app = make_app();
  EXPECT_THROW(scenario.run(app, 0.0), ContractViolation);
}

}  // namespace
}  // namespace socrates
