// Tests for the application-facing mARGOt Context (the API the weaver
// inserts: update / start_monitors / stop_monitors).
#include <gtest/gtest.h>

#include "margot/context.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"
#include "support/error.hpp"

namespace socrates::margot {
namespace {

KnowledgeBase ctx_kb() {
  KnowledgeBase kb({"config", "threads", "binding"}, ContextMetrics::names());
  kb.add(OperatingPoint{{0, 1, 0}, {{2.0, 0.1}, {55.0, 1.0}, {0.5, 0.02}}});
  kb.add(OperatingPoint{{1, 16, 0}, {{0.5, 0.02}, {120.0, 2.0}, {2.0, 0.1}}});
  return kb;
}

struct Fixture {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  Context ctx{ctx_kb(), clock, rapl};
};

TEST(Context, RequiresTheStandardMetricSchema) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  KnowledgeBase bad({"k"}, {"latency"});
  bad.add(OperatingPoint{{0}, {{1.0, 0.0}}});
  EXPECT_THROW(Context(std::move(bad), clock, rapl), ContractViolation);
}

TEST(Context, UpdateWritesKnobsAndReportsChange) {
  Fixture f;
  f.ctx.asrtm().set_rank(Rank::maximize_throughput(ContextMetrics::kThroughput));
  std::vector<int> knobs(3, -1);
  EXPECT_TRUE(f.ctx.update(knobs));  // first call is always a change
  EXPECT_EQ(knobs, (std::vector<int>{1, 16, 0}));
  EXPECT_FALSE(f.ctx.update(knobs));  // same selection again
}

TEST(Context, UpdateDetectsRankSwitch) {
  Fixture f;
  auto& asrtm = f.ctx.asrtm();
  asrtm.set_rank(Rank::maximize_throughput(ContextMetrics::kThroughput));
  std::vector<int> knobs(3);
  f.ctx.update(knobs);
  asrtm.set_rank(
      Rank::maximize_throughput_per_watt2(ContextMetrics::kThroughput,
                                          ContextMetrics::kPower));
  EXPECT_TRUE(f.ctx.update(knobs));
  EXPECT_EQ(knobs[0], 0);  // frugal point wins Thr/W^2 here
}

TEST(Context, UpdateRejectsWrongKnobArity) {
  Fixture f;
  std::vector<int> knobs(2);
  EXPECT_THROW(f.ctx.update(knobs), ContractViolation);
}

TEST(Context, MonitorsObserveTheRegion) {
  Fixture f;
  std::vector<int> knobs(3);
  f.ctx.update(knobs);
  f.ctx.start_monitors();
  f.clock.advance(0.5);
  f.rapl.accrue(0.5, 100.0);
  f.ctx.stop_monitors();
  EXPECT_DOUBLE_EQ(f.ctx.time_monitor().stats().last(), 0.5);
  EXPECT_DOUBLE_EQ(f.ctx.power_monitor().stats().last(), 100.0);
  EXPECT_DOUBLE_EQ(f.ctx.energy_monitor().stats().last(), 50.0);
}

TEST(Context, StopFeedsTheAsrtm) {
  Fixture f;
  f.ctx.asrtm().set_rank(Rank::maximize_throughput(ContextMetrics::kThroughput));
  f.ctx.asrtm().set_feedback_inertia(1.0);
  std::vector<int> knobs(3);
  f.ctx.update(knobs);  // selects op1 (exec_time mean 0.5)
  f.ctx.start_monitors();
  f.clock.advance(1.0);  // twice as slow as profiled
  f.rapl.accrue(1.0, 120.0);
  f.ctx.stop_monitors();
  EXPECT_NEAR(f.ctx.asrtm().correction(ContextMetrics::kExecTime), 2.0, 1e-12);
  EXPECT_NEAR(f.ctx.asrtm().correction(ContextMetrics::kPower), 1.0, 1e-12);
}

TEST(Context, StopWithoutUpdateIsAnError) {
  Fixture f;
  f.ctx.start_monitors();
  f.clock.advance(0.1);
  EXPECT_THROW(f.ctx.stop_monitors(), ContractViolation);
}

TEST(Context, LogReportsStatus) {
  Fixture f;
  EXPECT_NE(f.ctx.log().find("no operating point"), std::string::npos);
  f.ctx.asrtm().set_rank(Rank::maximize_throughput(ContextMetrics::kThroughput));
  std::vector<int> knobs(3);
  f.ctx.update(knobs);
  f.ctx.start_monitors();
  f.clock.advance(0.5);
  f.rapl.accrue(0.5, 100.0);
  f.ctx.stop_monitors();
  const std::string line = f.ctx.log();
  EXPECT_NE(line.find("op#1"), std::string::npos);
  EXPECT_NE(line.find("knobs=[1,16,0]"), std::string::npos);
  EXPECT_NE(line.find("time=500.0ms"), std::string::npos);
  EXPECT_NE(line.find("power=100.0W"), std::string::npos);
}

}  // namespace
}  // namespace socrates::margot
