// Tests for the MAPE-K decision journal: the bounded record store
// itself, and the AS-RTM integration that explains every
// operating-point switch (trigger notes, runner-up candidates,
// quarantine listing, state-switch attribution).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "margot/asrtm.hpp"
#include "margot/state_manager.hpp"
#include "support/error.hpp"

namespace socrates::margot {
namespace {

/// Same synthetic knowledge base as margot_asrtm_test.cpp:
///   op0: slow & frugal   (t=10, p=50,  thr=0.1)
///   op1: medium          (t=4,  p=80,  thr=0.25)
///   op2: fast & hungry   (t=1,  p=140, thr=1.0)
KnowledgeBase tiny_kb() {
  KnowledgeBase kb({"config", "threads"}, {"exec_time_s", "power_w", "throughput"});
  kb.add(OperatingPoint{{0, 1}, {{10.0, 0.5}, {50.0, 1.0}, {0.1, 0.005}}});
  kb.add(OperatingPoint{{1, 8}, {{4.0, 0.2}, {80.0, 2.0}, {0.25, 0.0125}}});
  kb.add(OperatingPoint{{2, 32}, {{1.0, 0.05}, {140.0, 3.0}, {1.0, 0.05}}});
  return kb;
}

constexpr std::size_t kTime = 0;
constexpr std::size_t kPower = 1;
constexpr std::size_t kThr = 2;

// ---- DecisionJournal store -------------------------------------------------

TEST(DecisionJournal, RejectsZeroCapacity) {
  EXPECT_THROW(DecisionJournal journal(0), ContractViolation);
}

TEST(DecisionJournal, BackOnEmptyThrows) {
  DecisionJournal journal;
  EXPECT_TRUE(journal.empty());
  EXPECT_THROW(journal.back(), ContractViolation);
}

TEST(DecisionJournal, AssignsSequencesAndDropsOldest) {
  DecisionJournal journal(2);
  for (int i = 0; i < 3; ++i) {
    DecisionRecord r;
    r.chosen = static_cast<std::size_t>(i);
    journal.append(std::move(r));
  }
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.total_decisions(), 3u);
  EXPECT_EQ(journal.dropped(), 1u);
  EXPECT_EQ(journal.records().front().sequence, 1u);  // record #0 dropped
  EXPECT_EQ(journal.back().sequence, 2u);
  EXPECT_EQ(journal.back().chosen, 2u);

  journal.clear();
  EXPECT_TRUE(journal.empty());
  EXPECT_EQ(journal.total_decisions(), 0u);
}

TEST(DecisionJournal, CapacityBoundHoldsUnderSustainedAppends) {
  // Drive a small journal far past its capacity: the bound holds at
  // every step, sequences stay monotonic, and the records visible
  // while appending are always a contiguous, consistent window.
  constexpr std::size_t kCapacity = 5;
  DecisionJournal journal(kCapacity);
  for (std::size_t i = 0; i < 100; ++i) {
    DecisionRecord r;
    r.chosen = i % 3;
    journal.append(std::move(r));

    ASSERT_LE(journal.size(), kCapacity);
    ASSERT_EQ(journal.total_decisions(), i + 1);
    ASSERT_EQ(journal.dropped(), journal.total_decisions() - journal.size());
    // Iterating between appends sees a contiguous sequence window
    // ending at the newest record.
    std::size_t expected = journal.records().front().sequence;
    for (const auto& record : journal.records())
      ASSERT_EQ(record.sequence, expected++);
    ASSERT_EQ(journal.back().sequence, i);
  }
  EXPECT_EQ(journal.size(), kCapacity);
  EXPECT_EQ(journal.dropped(), 95u);

  journal.clear();
  EXPECT_EQ(journal.total_decisions(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(DecisionJournal, DumpExplainsEachRecord) {
  DecisionJournal journal;
  DecisionRecord r;
  r.timestamp_s = 12.5;
  r.trigger = "rank changed";
  r.chosen = 2;
  r.chosen_score = 0.75;
  r.feasible = false;
  r.rejected = {{1, 0.5}};
  r.quarantined = {0};
  journal.append(std::move(r));

  std::ostringstream out;
  journal.dump(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("decision journal: 1 switch(es), 1 retained, 0 dropped"),
            std::string::npos);
  EXPECT_NE(text.find("[#0 t=12.5s] op 2"), std::string::npos);
  EXPECT_NE(text.find("(infeasible: constraints relaxed)"), std::string::npos);
  EXPECT_NE(text.find("trigger: rank changed"), std::string::npos);
  EXPECT_NE(text.find("rejected: op1(score=0.5)"), std::string::npos);
  EXPECT_NE(text.find("quarantined: op0"), std::string::npos);
}

// ---- AS-RTM integration ----------------------------------------------------

TEST(AsrtmJournal, ThrowsWhenDisabled) {
  Asrtm asrtm(tiny_kb());
  EXPECT_FALSE(asrtm.decision_journal_enabled());
  EXPECT_THROW(asrtm.decision_journal(), ContractViolation);
  asrtm.enable_decision_journal();
  EXPECT_TRUE(asrtm.decision_journal_enabled());
  asrtm.disable_decision_journal();
  EXPECT_THROW(asrtm.decision_journal(), ContractViolation);
}

TEST(AsrtmJournal, FirstSelectionIsTheInitialRecord) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(kThr));  // before enabling: no note
  asrtm.enable_decision_journal();
  asrtm.set_decision_time(3.0);
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);

  const auto& journal = asrtm.decision_journal();
  ASSERT_EQ(journal.total_decisions(), 1u);
  const auto& r = journal.back();
  EXPECT_EQ(r.sequence, 0u);
  EXPECT_EQ(r.chosen, 2u);
  EXPECT_DOUBLE_EQ(r.timestamp_s, 3.0);
  EXPECT_EQ(r.trigger, "initial selection");
  EXPECT_TRUE(r.feasible);
  // Runners-up: the non-chosen points, best-first under the rank,
  // with their scores — and never the chosen point itself.
  ASSERT_EQ(r.rejected.size(), 2u);
  EXPECT_EQ(r.rejected[0].op_index, 1u);
  EXPECT_DOUBLE_EQ(r.rejected[0].score, 0.25);
  EXPECT_EQ(r.rejected[1].op_index, 0u);
  EXPECT_DOUBLE_EQ(r.rejected[1].score, 0.1);
  EXPECT_TRUE(r.quarantined.empty());
}

TEST(AsrtmJournal, NoRecordWhenTheSelectionDoesNotChange) {
  Asrtm asrtm(tiny_kb());
  asrtm.enable_decision_journal();
  asrtm.set_rank(Rank::maximize_throughput(kThr));
  asrtm.find_best_operating_point();
  asrtm.find_best_operating_point();
  asrtm.find_best_operating_point();
  EXPECT_EQ(asrtm.decision_journal().total_decisions(), 1u);
}

TEST(AsrtmJournal, RequirementMutatorsExplainTheNextSwitch) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.enable_decision_journal();
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);  // #0: initial

  // Adding a 100 W budget evicts op2; the record names the constraint.
  const auto h = asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  asrtm.set_decision_time(10.0);
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  {
    const auto& r = asrtm.decision_journal().back();
    EXPECT_EQ(r.chosen, 1u);
    EXPECT_DOUBLE_EQ(r.timestamp_s, 10.0);
    EXPECT_NE(r.trigger.find("constraint 0 added"), std::string::npos) << r.trigger;
    EXPECT_NE(r.trigger.find("power_w"), std::string::npos) << r.trigger;
  }

  // Relaxing the goal back above op2's power swings the choice back.
  asrtm.set_constraint_goal(h, 150.0);
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
  EXPECT_EQ(asrtm.decision_journal().back().trigger, "constraint 0 goal -> 150");

  // Replace semantics: of two notes between decisions, the last wins.
  asrtm.clear_constraints();
  asrtm.set_rank(Rank{RankDirection::kMinimize, {{kPower, 1.0}}});
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  EXPECT_EQ(asrtm.decision_journal().back().trigger, "rank changed");
  EXPECT_EQ(asrtm.decision_journal().total_decisions(), 4u);
}

TEST(AsrtmJournal, InfeasibleSelectionIsFlagged) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.enable_decision_journal();
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 40.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  const auto& r = asrtm.decision_journal().back();
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.chosen, 0u);
}

TEST(AsrtmJournal, QuarantineDrivenSwitchListsTheQuarantined) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(kThr));
  asrtm.enable_decision_journal();
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);

  // op2's clone keeps crashing; after the threshold it is quarantined
  // and the next decision — with no requirement change — must both fall
  // back and explain itself as drift.
  asrtm.report_variant_failure(2);
  asrtm.report_variant_failure(2);
  ASSERT_TRUE(asrtm.is_quarantined(2));
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);

  const auto& r = asrtm.decision_journal().back();
  EXPECT_EQ(r.chosen, 1u);
  EXPECT_EQ(r.trigger, "feedback/quarantine drift");
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0], 2u);
}

TEST(AsrtmJournal, AllQuarantinedFallbackIsJournaledToo) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(kThr));
  asrtm.enable_decision_journal();
  asrtm.find_best_operating_point();
  for (std::size_t op = 0; op < 3; ++op) {
    asrtm.report_variant_failure(op);
    asrtm.report_variant_failure(op);
  }
  ASSERT_EQ(asrtm.quarantined_count(), 3u);
  const std::size_t safest = asrtm.find_best_operating_point();
  EXPECT_FALSE(asrtm.last_selection_feasible());

  const auto& r = asrtm.decision_journal().back();
  EXPECT_EQ(r.chosen, safest);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.rejected.empty());  // nothing was rankable
  EXPECT_EQ(r.quarantined.size(), 3u);
}

TEST(AsrtmJournal, StaleTriggerDoesNotMislabelALaterSwitch) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.enable_decision_journal();
  const auto h = asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 150.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);  // #0: initial

  // A goal change that does NOT move the selection: its note is
  // consumed by the very next decision, switch or not.
  asrtm.set_constraint_goal(h, 145.0);  // op2 (140 W) still fits
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
  EXPECT_EQ(asrtm.decision_journal().total_decisions(), 1u);

  // A later switch with an unrelated cause must name the true cause,
  // not the stale goal-change note.
  asrtm.report_variant_failure(2);
  asrtm.report_variant_failure(2);
  ASSERT_TRUE(asrtm.is_quarantined(2));
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_EQ(asrtm.decision_journal().back().trigger,
            "feedback/quarantine drift");

  // The cached (clean-epoch) path consumes notes the same way.
  asrtm.note_decision_trigger("note on an unchanged epoch");
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);  // cached, no switch
  asrtm.report_variant_failure(1);
  asrtm.report_variant_failure(1);
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  EXPECT_EQ(asrtm.decision_journal().back().trigger,
            "feedback/quarantine drift");
}

TEST(AsrtmJournal, StateSwitchOverridesTheGenericNotes) {
  Asrtm asrtm(tiny_kb());
  asrtm.enable_decision_journal();
  StateManager states(asrtm);
  // The first defined state activates immediately; its apply() rewrites
  // whatever notes set_rank/add_constraint left behind.  The two states
  // must pick different points (op0 vs op2) or no switch is recorded.
  states.define_state("energy", {}, Rank{RankDirection::kMinimize, {{kPower, 1.0}}});
  states.define_state("performance", {{kThr, ComparisonOp::kGreaterEqual, 0.5, 0, 0.0}},
                      Rank::maximize_throughput(kThr));

  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  EXPECT_EQ(asrtm.decision_journal().back().trigger, "state 'energy' activated");

  states.switch_to("performance");
  asrtm.set_decision_time(100.0);
  asrtm.find_best_operating_point();
  const auto& r = asrtm.decision_journal().back();
  EXPECT_EQ(r.trigger, "state 'performance' activated");
  EXPECT_DOUBLE_EQ(r.timestamp_s, 100.0);
}

TEST(AsrtmJournal, BoundedJournalDropsTheOldestSwitch) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.enable_decision_journal(2);
  const auto h = asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 150.0, 0, 0.0});
  asrtm.find_best_operating_point();  // #0: op2
  asrtm.set_constraint_goal(h, 60.0);
  asrtm.find_best_operating_point();  // #1: op0
  asrtm.set_constraint_goal(h, 100.0);
  asrtm.find_best_operating_point();  // #2: op1
  asrtm.set_constraint_goal(h, 150.0);
  asrtm.find_best_operating_point();  // #3: op2 again

  const auto& journal = asrtm.decision_journal();
  EXPECT_EQ(journal.total_decisions(), 4u);
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.dropped(), 2u);
  EXPECT_EQ(journal.records().front().sequence, 2u);
  EXPECT_EQ(journal.back().chosen, 2u);
}

}  // namespace
}  // namespace socrates::margot
