// Unit tests for the C-subset lexer.
#include <gtest/gtest.h>

#include "ir/lexer.hpp"

namespace socrates::ir {
namespace {

std::vector<Token> lex_all(const char* src) { return lex(src); }

TEST(Lexer, EmptyInputYieldsEnd) {
  const auto tokens = lex_all("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::kEnd));
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto tokens = lex_all("int foo_1 _bar while");
  EXPECT_TRUE(tokens[0].is_keyword("int"));
  EXPECT_TRUE(tokens[1].is(TokenKind::kIdentifier));
  EXPECT_EQ(tokens[1].text, "foo_1");
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_TRUE(tokens[3].is_keyword("while"));
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex_all("42 0x1F 7u 9L");
  EXPECT_TRUE(tokens[0].is(TokenKind::kIntLiteral));
  EXPECT_EQ(tokens[1].text, "0x1F");
  EXPECT_EQ(tokens[2].text, "7u");
  EXPECT_EQ(tokens[3].text, "9L");
}

TEST(Lexer, FloatLiterals) {
  const auto tokens = lex_all("1.5 2. .25 1e9 3.0e-2 1.0f");
  for (int i = 0; i < 6; ++i)
    EXPECT_TRUE(tokens[i].is(TokenKind::kFloatLiteral)) << "token " << i;
}

TEST(Lexer, FloatSuffixPromotesIntToFloat) {
  const auto tokens = lex_all("5f");
  EXPECT_TRUE(tokens[0].is(TokenKind::kFloatLiteral));
}

TEST(Lexer, StringAndCharLiterals) {
  const auto tokens = lex_all(R"("hi\n" 'x' '\t')");
  EXPECT_TRUE(tokens[0].is(TokenKind::kStringLiteral));
  EXPECT_EQ(tokens[0].text, "\"hi\\n\"");
  EXPECT_TRUE(tokens[1].is(TokenKind::kCharLiteral));
  EXPECT_EQ(tokens[2].text, "'\\t'");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex_all("\"oops"), LexError);
}

TEST(Lexer, MaximalMunchOperators) {
  const auto tokens = lex_all("a <<= b >> c <= d++ + ++e");
  EXPECT_TRUE(tokens[1].is_punct("<<="));
  EXPECT_TRUE(tokens[3].is_punct(">>"));
  EXPECT_TRUE(tokens[5].is_punct("<="));
  EXPECT_TRUE(tokens[7].is_punct("++"));
  EXPECT_TRUE(tokens[8].is_punct("+"));
  EXPECT_TRUE(tokens[9].is_punct("++"));
}

TEST(Lexer, ArrowAndEllipsis) {
  const auto tokens = lex_all("p->q ...");
  EXPECT_TRUE(tokens[1].is_punct("->"));
  EXPECT_TRUE(tokens[3].is_punct("..."));
}

TEST(Lexer, LineCommentsIgnored) {
  const auto tokens = lex_all("a // comment with * tokens\nb");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, BlockCommentsIgnored) {
  const auto tokens = lex_all("a /* x\ny */ b");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex_all("/* never closed"), LexError);
}

TEST(Lexer, DirectiveCapturesWholeLine) {
  const auto tokens = lex_all("#include <stdio.h>\nint x;");
  ASSERT_TRUE(tokens[0].is(TokenKind::kDirective));
  EXPECT_EQ(tokens[0].text, "include <stdio.h>");
  EXPECT_TRUE(tokens[1].is_keyword("int"));
}

TEST(Lexer, DirectiveWithContinuation) {
  const auto tokens = lex_all("#define ADD(a, b) \\\n  ((a) + (b))\nx");
  ASSERT_TRUE(tokens[0].is(TokenKind::kDirective));
  EXPECT_NE(tokens[0].text.find("((a) + (b))"), std::string::npos);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(Lexer, HashMidLineIsNotDirective) {
  // A '#' after other tokens on the line is lexed as punctuation.
  const auto tokens = lex_all("a #");
  EXPECT_TRUE(tokens[1].is_punct("#"));
}

TEST(Lexer, PragmaDirective) {
  const auto tokens = lex_all("#pragma omp parallel for num_threads(4)");
  ASSERT_TRUE(tokens[0].is(TokenKind::kDirective));
  EXPECT_EQ(tokens[0].text, "pragma omp parallel for num_threads(4)");
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = lex_all("a\n  bb\n");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, RejectsStrayBytes) {
  EXPECT_THROW(lex_all("int $x;"), LexError);
}

}  // namespace
}  // namespace socrates::ir
