// Tests for the deterministic task executor: exactly-once execution,
// serial fallback, nested inlining, exception propagation, job-count
// selection and per-task RNG stream derivation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/hash.hpp"
#include "support/task_pool.hpp"

namespace socrates {
namespace {

TEST(TaskPool, EveryIndexRunsExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(TaskPool, ReusableAcrossManyInvocations) {
  TaskPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(17, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(TaskPool, EmptyAndTinyRangesAreFine) {
  TaskPool pool(8);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.parallel_for(1, [&](std::size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
  // Fewer items than workers.
  std::vector<std::atomic<int>> counts(3);
  pool.parallel_for(counts.size(), [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(TaskPool, Jobs1SpawnsNoThreadsAndRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(64, [&](std::size_t) { seen.insert(std::this_thread::get_id()); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(TaskPool, NestedParallelForInlinesInsteadOfDeadlocking) {
  TaskPool pool(2);
  std::vector<std::atomic<int>> counts(8 * 8);
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(8, [&](std::size_t inner) {
      counts[outer * 8 + inner].fetch_add(1);
    });
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(TaskPool, FirstExceptionIsRethrownAfterTheBarrier) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  EXPECT_THROW(
      pool.parallel_for(counts.size(),
                        [&](std::size_t i) {
                          counts[i].fetch_add(1);
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The barrier still ran every index (the pool does not abandon work).
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  // And the pool remains usable afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(TaskPool, ExceptionContractHoldsAtEveryJobCount) {
  // The serial fallback (jobs=1) and the worker path (jobs>1) must obey
  // the same contract: a throwing task does not deadlock, does not stop
  // its siblings, and leaves the pool reusable.
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    TaskPool pool(jobs);
    std::vector<std::atomic<int>> counts(50);
    EXPECT_THROW(
        pool.parallel_for(counts.size(),
                          [&](std::size_t i) {
                            counts[i].fetch_add(1);
                            if (i == 13) throw std::runtime_error("boom");
                          }),
        std::runtime_error)
        << "jobs=" << jobs;
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1) << "jobs=" << jobs;
    std::atomic<int> after{0};
    pool.parallel_for(10, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 10) << "jobs=" << jobs;
  }
}

TEST(TaskPool, LaterThrowingSiblingsAreSwallowed) {
  // When several tasks throw, exactly one exception crosses the barrier
  // and the rest are absorbed — a sibling failing *after* the first
  // throw must not terminate the process or corrupt the pool.
  for (const std::size_t jobs : {1u, 4u}) {
    TaskPool pool(jobs);
    std::vector<std::atomic<int>> counts(64);
    std::atomic<int> thrown{0};
    int caught = 0;
    try {
      pool.parallel_for(counts.size(), [&](std::size_t i) {
        counts[i].fetch_add(1);
        if (i % 2 == 0) {  // 32 of the 64 tasks fail
          thrown.fetch_add(1);
          throw std::runtime_error("sibling " + std::to_string(i));
        }
      });
    } catch (const std::runtime_error&) {
      ++caught;
    }
    EXPECT_EQ(caught, 1) << "jobs=" << jobs;
    EXPECT_EQ(thrown.load(), 32) << "jobs=" << jobs;
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1) << "jobs=" << jobs;
    std::atomic<int> after{0};
    pool.parallel_for(10, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 10) << "jobs=" << jobs;
  }
}

TEST(TaskPool, DefaultJobsHonoursEnvironment) {
  const char* old = std::getenv("SOCRATES_JOBS");
  const std::string saved = old != nullptr ? old : "";

  ::setenv("SOCRATES_JOBS", "3", 1);
  EXPECT_EQ(TaskPool::default_jobs(), 3u);
  EXPECT_EQ(TaskPool(0).jobs(), 3u);

  ::setenv("SOCRATES_JOBS", "999", 1);  // capped
  EXPECT_LE(TaskPool::default_jobs(), 256u);

  ::unsetenv("SOCRATES_JOBS");
  EXPECT_GE(TaskPool::default_jobs(), 1u);

  if (old != nullptr)
    ::setenv("SOCRATES_JOBS", saved.c_str(), 1);
  else
    ::unsetenv("SOCRATES_JOBS");
}

TEST(TaskPool, SharedPoolIsAProcessSingleton) {
  TaskPool& a = TaskPool::shared();
  TaskPool& b = TaskPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> sum{0};
  a.parallel_for(8, [&](std::size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 8);
}

// ---- RNG stream derivation (the determinism primitive) --------------------------

TEST(DeriveStream, DeterministicAndIndexSensitive) {
  EXPECT_EQ(derive_stream(2018, 0), derive_stream(2018, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i) seeds.insert(derive_stream(2018, i));
  EXPECT_EQ(seeds.size(), 4096u);  // no collisions over a DSE-sized range
  EXPECT_NE(derive_stream(2018, 5), derive_stream(2019, 5));
}

TEST(StableHash, HasherIsStableAndAliasFree) {
  Hasher a;
  a.add("ab").add("c");
  Hasher b;
  b.add("a").add("bc");
  EXPECT_NE(a.digest(), b.digest());  // length-prefixed strings never alias

  Hasher c;
  c.add(std::uint64_t{42}).add(3.5).add("x");
  Hasher d;
  d.add(std::uint64_t{42}).add(3.5).add("x");
  EXPECT_EQ(c.digest(), d.digest());
  EXPECT_EQ(c.hex().size(), 16u);

  EXPECT_EQ(stable_hash64("socrates"), stable_hash64("socrates"));
  EXPECT_NE(stable_hash64("socrates"), stable_hash64("socrate"));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));  // order-sensitive
}

}  // namespace
}  // namespace socrates
