// MAPE-K reaction tests: the AS-RTM must discover external load through
// its monitors and adjust the configuration, without being told.
#include <gtest/gtest.h>

#include "socrates/adaptive_app.hpp"
#include "socrates/toolchain.hpp"

namespace socrates {
namespace {

using M = margot::ContextMetrics;

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

AdaptiveApplication make_app(const char* bench, double work_scale = 0.02) {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = work_scale;
  Toolchain tc(model(), opts);
  return AdaptiveApplication(tc.build(bench), model(), work_scale);
}

TEST(Adaptation, CorrectionTracksCoRunnerSlowdown) {
  auto app = make_app("gemver");
  app.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));

  platform::DisturbanceSchedule sched;
  sched.add({5.0, 1e9, /*bw_steal=*/0.5, 0.0, 0.0});
  app.set_disturbances(std::move(sched));

  std::vector<TraceSample> trace;
  app.run_until(4.0, trace);
  const double before = app.margot().asrtm().correction(M::kExecTime);
  EXPECT_NEAR(before, 1.0, 0.05);

  app.run_until(30.0, trace);
  const double during = app.margot().asrtm().correction(M::kExecTime);
  // gemver is bandwidth-bound (beta=.75): a 50% steal costs ~1.5-1.8x.
  EXPECT_GT(during, 1.3);
}

TEST(Adaptation, PowerCapHoldsUnderPowerDisturbance) {
  // A co-runner adds 25 W of package power.  Under a 100 W cap the
  // feedback-corrected AS-RTM must move to a configuration whose
  // *observed* power is back under the cap.
  auto app = make_app("2mm");
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 0.0});

  std::vector<TraceSample> calm;
  app.run_until(10.0, calm);
  const auto baseline = calm.back();
  EXPECT_LE(baseline.power_w, 104.0);

  platform::DisturbanceSchedule sched;
  sched.add({10.0, 1e9, 0.0, 0.0, /*power=*/25.0});
  app.set_disturbances(std::move(sched));

  std::vector<TraceSample> disturbed;
  app.run_until(60.0, disturbed);
  // Late in the episode the loop has adapted: observed power <= cap
  // (small slack for noise) even though the co-runner adds 25 W.
  const auto& late = disturbed.back();
  EXPECT_LE(late.power_w, 106.0);
  // And it had to pick a leaner configuration than before.
  EXPECT_LE(late.threads, baseline.threads);
}

TEST(Adaptation, RecoversWhenTheEpisodeEnds) {
  auto app = make_app("2mm");
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 0.0});

  platform::DisturbanceSchedule sched;
  sched.add({5.0, 40.0, 0.0, 0.0, 25.0});
  app.set_disturbances(std::move(sched));

  std::vector<TraceSample> trace;
  app.run_until(40.0, trace);
  const auto during = trace.back();
  app.run_until(120.0, trace);
  const auto after = trace.back();
  // Once the co-runner leaves, the corrections decay and the AS-RTM
  // climbs back to a more aggressive point.
  EXPECT_GE(after.threads, during.threads);
  EXPECT_LE(after.exec_time_s, during.exec_time_s * 1.02);
}

TEST(Adaptation, UncorrectedRtmViolatesTheCap) {
  // Negative control: with feedback frozen (inertia ~ 0 keeps the
  // correction at 1.0 forever), the same disturbance pushes the
  // selection over the cap and it stays there.
  auto app = make_app("2mm");
  app.asrtm().set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
  app.asrtm().add_constraint(
      {M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  app.asrtm().set_feedback_inertia(1e-9);  // effectively no learning

  platform::DisturbanceSchedule sched;
  sched.add({5.0, 1e9, 0.0, 0.0, 25.0});
  app.set_disturbances(std::move(sched));

  std::vector<TraceSample> trace;
  app.run_until(60.0, trace);
  EXPECT_GT(trace.back().power_w, 105.0)
      << "without adaptation the cap must be violated";
}

}  // namespace
}  // namespace socrates
