// Tests for operating points, the knowledge base and the AS-RTM
// decision engine (constraint filtering, graceful degradation, rank,
// online knowledge adaptation).
#include <gtest/gtest.h>

#include <limits>

#include "margot/asrtm.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace socrates::margot {
namespace {

/// Small synthetic knowledge base:
///   op0: slow & frugal   (t=10, p=50,  thr=0.1)
///   op1: medium          (t=4,  p=80,  thr=0.25)
///   op2: fast & hungry   (t=1,  p=140, thr=1.0)
KnowledgeBase tiny_kb() {
  KnowledgeBase kb({"config", "threads"}, {"exec_time_s", "power_w", "throughput"});
  kb.add(OperatingPoint{{0, 1}, {{10.0, 0.5}, {50.0, 1.0}, {0.1, 0.005}}});
  kb.add(OperatingPoint{{1, 8}, {{4.0, 0.2}, {80.0, 2.0}, {0.25, 0.0125}}});
  kb.add(OperatingPoint{{2, 32}, {{1.0, 0.05}, {140.0, 3.0}, {1.0, 0.05}}});
  return kb;
}

constexpr std::size_t kTime = 0;
constexpr std::size_t kPower = 1;
constexpr std::size_t kThr = 2;

TEST(KnowledgeBase, SchemaAndLookup) {
  const auto kb = tiny_kb();
  EXPECT_EQ(kb.size(), 3u);
  EXPECT_EQ(kb.metric_index("power_w"), 1u);
  EXPECT_EQ(kb.knob_index("threads"), 1u);
  EXPECT_THROW(kb.metric_index("nope"), ContractViolation);
  EXPECT_EQ(kb.find({1, 8}), 1u);
  EXPECT_EQ(kb.find({9, 9}), std::nullopt);
}

TEST(KnowledgeBase, RejectsDuplicatesAndBadShapes) {
  auto kb = tiny_kb();
  EXPECT_THROW(kb.add(OperatingPoint{{0, 1}, {{1, 0}, {1, 0}, {1, 0}}}),
               ContractViolation);
  EXPECT_THROW(kb.add(OperatingPoint{{5}, {{1, 0}, {1, 0}, {1, 0}}}), ContractViolation);
  EXPECT_THROW(kb.add(OperatingPoint{{5, 5}, {{1, 0}}}), ContractViolation);
}

TEST(Asrtm, UnconstrainedRankMaximizeThroughput) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(kThr));
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
  EXPECT_TRUE(asrtm.last_selection_feasible());
}

TEST(Asrtm, UnconstrainedRankMinimizeTime) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
}

TEST(Asrtm, PowerBudgetFiltersFastPoint) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_TRUE(asrtm.last_selection_feasible());
}

TEST(Asrtm, InfeasibleBudgetDegradesToLeastViolating) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 40.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);  // 50 W is closest to 40 W
  EXPECT_FALSE(asrtm.last_selection_feasible());
}

TEST(Asrtm, ConstraintGoalCanChangeAtRuntime) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  const auto h = asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 60.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  asrtm.set_constraint_goal(h, 150.0);
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
}

TEST(Asrtm, PriorityOrderMatters) {
  // Conflicting constraints: power <= 60 (prio 0) and thr >= 0.2 (prio 1).
  // No point satisfies both; the high-priority power cap must win and
  // within its survivors the throughput constraint is relaxed.
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput(kThr));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 60.0, 0, 0.0});
  asrtm.add_constraint({kThr, ComparisonOp::kGreaterEqual, 0.2, 1, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  EXPECT_FALSE(asrtm.last_selection_feasible());
}

TEST(Asrtm, ConfidenceWidensTheTest) {
  // op1 power = 80 +/- 2; with 3-sigma confidence the pessimistic value
  // is 86, so an 85 W budget rejects it.
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 85.0, 0, 3.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  asrtm.clear_constraints();
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 85.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
}

TEST(Asrtm, ThroughputPerWattSquaredPrefersBalanced) {
  // Thr/W^2: op0 = .1/2500 = 4e-5; op1 = .25/6400 = 3.9e-5;
  // op2 = 1/19600 = 5.1e-5 -> op2 wins; shrink its throughput and it loses.
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::maximize_throughput_per_watt2(kThr, kPower));
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
}

TEST(Asrtm, FeedbackShiftsSelection) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  // The platform now draws 30% more power than profiled: op1 (80 W)
  // exceeds 100 W once corrected, so the AS-RTM must fall back to op0.
  asrtm.set_feedback_inertia(1.0);
  asrtm.send_feedback(1, kPower, 104.0);
  EXPECT_NEAR(asrtm.correction(kPower), 1.3, 1e-12);
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
}

TEST(Asrtm, FeedbackIsEwma) {
  Asrtm asrtm(tiny_kb());
  asrtm.set_feedback_inertia(0.5);
  asrtm.send_feedback(0, kTime, 20.0);  // ratio 2.0
  EXPECT_NEAR(asrtm.correction(kTime), 1.5, 1e-12);
  asrtm.send_feedback(0, kTime, 20.0);
  EXPECT_NEAR(asrtm.correction(kTime), 1.75, 1e-12);
  asrtm.reset_feedback();
  EXPECT_DOUBLE_EQ(asrtm.correction(kTime), 1.0);
}

TEST(Asrtm, RankEvaluateUsesCorrections) {
  const auto kb = tiny_kb();
  const Rank rank = Rank::maximize_throughput_per_watt2(kThr, kPower);
  const double base = rank.evaluate(kb[2]);
  const double corrected = rank.evaluate(kb[2], {1.0, 2.0, 1.0});  // power doubled
  EXPECT_NEAR(corrected, base / 4.0, 1e-12);
}

TEST(Asrtm, NearZeroViolationTiesSurvive) {
  // Both points violate the (unsatisfiable) power cap by ~1e-16 — pure
  // floating-point noise.  A relative-only tie tolerance collapses at
  // this scale and drops op1, hiding its 4x better throughput; the
  // combined absolute+relative tolerance keeps both in play so the rank
  // decides.
  KnowledgeBase kb({"k"}, {"power_w", "throughput"});
  kb.add(OperatingPoint{{0}, {{1e-16, 0.0}, {0.5, 0.0}}});
  kb.add(OperatingPoint{{1}, {{2e-16, 0.0}, {2.0, 0.0}}});
  Asrtm asrtm(kb);
  asrtm.set_rank(Rank::maximize_throughput(1));
  asrtm.add_constraint({0, ComparisonOp::kLess, 0.0, 0, 0.0});
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_FALSE(asrtm.last_selection_feasible());
}

TEST(ViolationTies, CombinedToleranceKeepsDenormalTies) {
  const double denormal = 5e-324;
  EXPECT_TRUE(violation_ties_minimum(denormal, denormal));
  EXPECT_TRUE(violation_ties_minimum(3 * denormal, denormal));
  EXPECT_TRUE(violation_ties_minimum(1e-16, 0.0));
  EXPECT_FALSE(violation_ties_minimum(1e-9, 0.0));
  // At normal magnitudes the relative term still governs.
  EXPECT_TRUE(violation_ties_minimum(10.0 * (1.0 + 1e-13), 10.0));
  EXPECT_FALSE(violation_ties_minimum(10.0 * (1.0 + 1e-9), 10.0));
}

TEST(Asrtm, ZeroObservedFeedbackIsRejectedGracefully) {
  // A stalled kernel observes zero throughput; that must not abort the
  // process (the old SOCRATES_REQUIRE did), must leave the correction
  // untouched, and must be visible to the metrics and the event sink.
  Asrtm asrtm(tiny_kb());
  std::vector<RuntimeEvent> events;
  asrtm.set_event_sink([&events](const RuntimeEvent& e) { events.push_back(e); });
  asrtm.send_feedback(1, kPower, 0.0);
  asrtm.send_feedback(1, kPower, -3.0);
  asrtm.send_feedback(1, kPower, std::numeric_limits<double>::quiet_NaN());
  asrtm.send_feedback(1, kPower, std::numeric_limits<double>::infinity());
  EXPECT_EQ(asrtm.feedback_rejected(), 4u);
  EXPECT_DOUBLE_EQ(asrtm.correction(kPower), 1.0);
  ASSERT_EQ(events.size(), 4u);
  for (const auto& e : events)
    EXPECT_EQ(e.kind, RuntimeEvent::Kind::kFeedbackRejected);
  // Valid feedback still adapts.
  asrtm.set_feedback_inertia(1.0);
  asrtm.send_feedback(1, kPower, 104.0);
  EXPECT_EQ(asrtm.feedback_rejected(), 4u);
  EXPECT_NEAR(asrtm.correction(kPower), 1.3, 1e-12);
}

TEST(Asrtm, RejectsForeignMetricIndices) {
  Asrtm asrtm(tiny_kb());
  EXPECT_THROW(asrtm.add_constraint({9, ComparisonOp::kLess, 1.0, 0, 0.0}),
               ContractViolation);
  EXPECT_THROW(asrtm.set_rank(Rank{RankDirection::kMaximize, {{7, 1.0}}}),
               ContractViolation);
  EXPECT_THROW(asrtm.send_feedback(0, 9, 1.0), ContractViolation);
}

// ---- property sweep over random knowledge bases --------------------------------

class AsrtmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsrtmProperty, SelectionSatisfiesSatisfiableConstraints) {
  // For random KBs and random feasible budgets, the selected point must
  // satisfy the constraint whenever any point does, and be rank-optimal
  // among the satisfying points.
  Rng rng(GetParam());
  KnowledgeBase kb({"k"}, {"exec_time_s", "power_w", "throughput"});
  const std::size_t n = 30;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.uniform(0.1, 10.0);
    const double p = rng.uniform(45.0, 150.0);
    kb.add(OperatingPoint{{static_cast<int>(i)}, {{t, 0.0}, {p, 0.0}, {1.0 / t, 0.0}}});
  }
  Asrtm asrtm(kb);
  asrtm.set_rank(Rank::minimize_exec_time(0));
  const auto handle = asrtm.add_constraint({1, ComparisonOp::kLessEqual, 0.0, 0, 0.0});

  for (int round = 0; round < 25; ++round) {
    const double budget = rng.uniform(40.0, 160.0);
    asrtm.set_constraint_goal(handle, budget);
    const std::size_t chosen = asrtm.find_best_operating_point();

    bool any_satisfies = false;
    double best_time = 1e100;
    for (std::size_t i = 0; i < kb.size(); ++i) {
      if (kb[i].metrics[1].mean > budget) continue;
      any_satisfies = true;
      best_time = std::min(best_time, kb[i].metrics[0].mean);
    }
    if (any_satisfies) {
      EXPECT_TRUE(asrtm.last_selection_feasible());
      EXPECT_LE(kb[chosen].metrics[1].mean, budget);
      EXPECT_DOUBLE_EQ(kb[chosen].metrics[0].mean, best_time);
    } else {
      EXPECT_FALSE(asrtm.last_selection_feasible());
      // Least-violating: no point has lower power.
      for (std::size_t i = 0; i < kb.size(); ++i)
        EXPECT_GE(kb[i].metrics[1].mean, kb[chosen].metrics[1].mean - 1e-9);
    }
  }
}

TEST_P(AsrtmProperty, RankOrderingIsTotalAndStable) {
  Rng rng(GetParam() * 31);
  KnowledgeBase kb({"k"}, {"exec_time_s", "power_w", "throughput"});
  for (std::size_t i = 0; i < 20; ++i) {
    const double t = rng.uniform(0.1, 10.0);
    kb.add(OperatingPoint{{static_cast<int>(i)},
                          {{t, 0.0}, {rng.uniform(50.0, 150.0), 0.0}, {1.0 / t, 0.0}}});
  }
  Asrtm asrtm(kb);
  asrtm.set_rank(Rank::maximize_throughput_per_watt2(2, 1));
  const std::size_t a = asrtm.find_best_operating_point();
  const std::size_t b = asrtm.find_best_operating_point();
  EXPECT_EQ(a, b);
  const Rank rank = Rank::maximize_throughput_per_watt2(2, 1);
  for (std::size_t i = 0; i < kb.size(); ++i)
    EXPECT_GE(rank.evaluate(kb[a]), rank.evaluate(kb[i]));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsrtmProperty, ::testing::Values(11, 22, 33, 44, 55));

TEST(Comparison, AllOperators) {
  EXPECT_TRUE(compare(1.0, ComparisonOp::kLess, 2.0));
  EXPECT_FALSE(compare(2.0, ComparisonOp::kLess, 2.0));
  EXPECT_TRUE(compare(2.0, ComparisonOp::kLessEqual, 2.0));
  EXPECT_TRUE(compare(3.0, ComparisonOp::kGreater, 2.0));
  EXPECT_TRUE(compare(2.0, ComparisonOp::kGreaterEqual, 2.0));
}

}  // namespace
}  // namespace socrates::margot
