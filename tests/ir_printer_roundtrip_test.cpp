// Printer tests + the parse/print round-trip property over all twelve
// embedded Polybench sources (parameterized).
#include <gtest/gtest.h>

#include "kernels/sources.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace socrates::ir {
namespace {

std::string rt(const char* src) { return print_expr(*parse_expression(src)); }

TEST(Printer, PreservesPrecedenceWithoutRedundantParens) {
  EXPECT_EQ(rt("a + b * c"), "a + b * c");
  EXPECT_EQ(rt("(a + b) * c"), "(a + b) * c");
  EXPECT_EQ(rt("a - (b - c)"), "a - (b - c)");
  EXPECT_EQ(rt("a - b - c"), "a - b - c");
}

TEST(Printer, UnaryAndCast) {
  EXPECT_EQ(rt("-(a + b)"), "-(a + b)");
  EXPECT_EQ(rt("(double)x / y"), "(double)x / y");
  EXPECT_EQ(rt("(double)(x / y)"), "(double)(x / y)");
}

TEST(Printer, ConditionalAndAssignment) {
  EXPECT_EQ(rt("x = a > b ? a : b"), "x = a > b ? a : b");
  EXPECT_EQ(rt("x += y"), "x += y");
}

TEST(Printer, IndexAndCall) {
  EXPECT_EQ(rt("A[i][j] + f(x, 1)"), "A[i][j] + f(x, 1)");
}

TEST(Printer, StatementShapes) {
  const auto s = parse_statement("if (a) { x = 1; } else x = 2;");
  const std::string out = print_stmt(*s);
  EXPECT_NE(out.find("if (a)"), std::string::npos);
  EXPECT_NE(out.find("else"), std::string::npos);
}

TEST(Printer, ForHeaderInlinesInit) {
  const auto s = parse_statement("for (int i = 0; i < n; i++) x += i;");
  const std::string out = print_stmt(*s);
  EXPECT_NE(out.find("for (int i = 0; i < n; i++)"), std::string::npos);
}

TEST(Printer, MultiDeclaratorRoundTrip) {
  const auto s = parse_statement("int i, j = 2, k;");
  EXPECT_EQ(print_stmt(*s), "int i, j = 2, k;\n");
}

TEST(Printer, SignatureOfArrayParams) {
  const auto tu = parse("void f(double A[800][900], int n) { }");
  const auto& fn = static_cast<const FunctionDecl&>(*tu.items[0]);
  EXPECT_EQ(print_signature(fn), "void f(double A[800][900], int n)");
}

/// The fixpoint property: after one parse/print cycle the text is
/// stable under further cycles.
class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, ParsePrintFixpoint) {
  const std::string& source = kernels::benchmark_source(GetParam());
  const std::string once = print(parse(source));
  const std::string twice = print(parse(once));
  EXPECT_EQ(once, twice) << "benchmark " << GetParam();
}

TEST_P(RoundTrip, ReparseKeepsStructure) {
  const std::string& source = kernels::benchmark_source(GetParam());
  const auto tu1 = parse(source);
  const auto tu2 = parse(print(tu1));
  EXPECT_EQ(tu1.items.size(), tu2.items.size());
  EXPECT_EQ(tu1.functions().size(), tu2.functions().size());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RoundTrip,
                         ::testing::ValuesIn(kernels::benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });
INSTANTIATE_TEST_SUITE_P(ExtendedBenchmarks, RoundTrip,
                         ::testing::ValuesIn(kernels::extended_benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });


}  // namespace
}  // namespace socrates::ir
