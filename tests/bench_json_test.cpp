// Tests for the machine-readable bench artifact layer
// (support/bench_json.hpp): the streaming JSON writer, the
// numeric-leaf flattener behind the baseline checker, baseline parsing
// and the bound checks that gate BENCH_*.json files in CTest.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "support/bench_json.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .kv("throughput", 1.5)
      .kv("count", std::uint64_t{42})
      .kv("ok", true)
      .kv("name", "clean")
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"throughput\":1.5,\"count\":42,\"ok\":true,\"name\":\"clean\"}");
}

TEST(JsonWriter, NestedObjectsAndArrays) {
  JsonWriter w;
  w.begin_object().key("runs").begin_array();
  w.begin_object().kv("p50", 1.0).end_object();
  w.begin_object().kv("p50", 2.0).end_object();
  w.end_array().end_object();
  EXPECT_EQ(w.str(), "{\"runs\":[{\"p50\":1},{\"p50\":2}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object()
      .kv("nan", std::numeric_limits<double>::quiet_NaN())
      .kv("inf", std::numeric_limits<double>::infinity())
      .end_object();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(JsonWriter, StringsAreEscaped) {
  JsonWriter w;
  w.begin_object().kv("s", "a\"b\\c\nd").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, ControlCharactersAreEscapedInValuesAndKeys) {
  JsonWriter w;
  w.begin_object().kv("s", std::string("a\r\b\f\x01\x1f") + "z").end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\r\\b\\f\\u0001\\u001fz\"}");

  JsonWriter k;
  k.begin_object().kv(std::string_view("bad\x02key", 7), 1).end_object();
  EXPECT_EQ(k.str(), "{\"bad\\u0002key\":1}");
}

TEST(ParseNumericLeaves, FlattensNestedPaths) {
  const auto leaves = parse_numeric_leaves(
      R"({"clean": {"throughput": 2000.5, "ok": true},
          "runs": [{"p50": 1.5}, {"p50": 2.5}],
          "label": "ignored", "nothing": null})");
  EXPECT_DOUBLE_EQ(leaves.at("clean.throughput"), 2000.5);
  EXPECT_DOUBLE_EQ(leaves.at("clean.ok"), 1.0);
  EXPECT_DOUBLE_EQ(leaves.at("runs[0].p50"), 1.5);
  EXPECT_DOUBLE_EQ(leaves.at("runs[1].p50"), 2.5);
  EXPECT_EQ(leaves.count("label"), 0u);    // strings are not numeric leaves
  EXPECT_EQ(leaves.count("nothing"), 0u);  // nor nulls
}

TEST(ParseNumericLeaves, RoundTripsTheWriter) {
  JsonWriter w;
  w.begin_object().key("overload").begin_object().kv("shed", 123).end_object();
  w.kv("ratio", 4.75).end_object();
  const auto leaves = parse_numeric_leaves(w.str());
  EXPECT_DOUBLE_EQ(leaves.at("overload.shed"), 123.0);
  EXPECT_DOUBLE_EQ(leaves.at("ratio"), 4.75);
}

TEST(ParseNumericLeaves, MalformedDocumentsThrow) {
  EXPECT_THROW(parse_numeric_leaves("{\"a\": }"), Error);
  EXPECT_THROW(parse_numeric_leaves("{\"a\": 1"), Error);
  EXPECT_THROW(parse_numeric_leaves("not json"), Error);
}

TEST(ParseNumericLeaves, AcceptsExponentAndSignedZeroForms) {
  const auto leaves = parse_numeric_leaves(
      R"({"a": 1e3, "b": 2.5E-2, "c": -0.0, "d": -12.75,
          "e": 1.25e+2, "f": 0.5, "g": 0, "h": -3e2})");
  EXPECT_DOUBLE_EQ(leaves.at("a"), 1000.0);
  EXPECT_DOUBLE_EQ(leaves.at("b"), 0.025);
  EXPECT_DOUBLE_EQ(leaves.at("c"), 0.0);
  EXPECT_TRUE(std::signbit(leaves.at("c")));
  EXPECT_DOUBLE_EQ(leaves.at("d"), -12.75);
  EXPECT_DOUBLE_EQ(leaves.at("e"), 125.0);
  EXPECT_DOUBLE_EQ(leaves.at("f"), 0.5);
  EXPECT_DOUBLE_EQ(leaves.at("g"), 0.0);
  EXPECT_DOUBLE_EQ(leaves.at("h"), -300.0);
}

// The old strtod-based reader silently accepted C-library spellings
// that are not JSON.  Each rejection must carry a named reason, not a
// generic parse failure.
TEST(ParseNumericLeaves, RejectsNonJsonNumberSpellingsWithNamedErrors) {
  const auto error_for = [](const std::string& doc) -> std::string {
    try {
      parse_numeric_leaves(doc);
    } catch (const Error& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(error_for(R"({"a": nan})").find("nan"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": inf})").find("non-finite"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": -inf})").find("non-finite"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": NaN})").find("non-finite"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": +1})").find("leading '+'"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": .5})").find("leading '.'"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": 0x10})").find("hex"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": 01})").find("leading zero"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": 1e})").find("exponent"), std::string::npos);
  EXPECT_NE(error_for(R"({"a": 1.})").find("digits after '.'"),
            std::string::npos);
  EXPECT_NE(error_for(R"({"a": 1e999})").find("out of double range"),
            std::string::npos);
}

TEST(Baseline, ParsesChecksWithOptionalBounds) {
  const auto checks = parse_baseline(
      R"({"checks": [
            {"path": "clean.throughput_per_s", "min": 20000},
            {"path": "decide.steady_allocs", "max": 0},
            {"path": "ratio", "min": 1, "max": 5}]})");
  ASSERT_EQ(checks.size(), 3u);
  EXPECT_EQ(checks[0].path, "clean.throughput_per_s");
  EXPECT_DOUBLE_EQ(checks[0].min, 20000.0);
  EXPECT_EQ(checks[1].path, "decide.steady_allocs");
  EXPECT_DOUBLE_EQ(checks[1].max, 0.0);
  EXPECT_DOUBLE_EQ(checks[2].min, 1.0);
  EXPECT_DOUBLE_EQ(checks[2].max, 5.0);
}

TEST(Baseline, PassesWhenEveryBoundHolds) {
  const auto checks = parse_baseline(
      R"({"checks": [{"path": "a.b", "min": 1, "max": 3}]})");
  EXPECT_TRUE(check_against_baseline(checks, R"({"a": {"b": 2}})").empty());
}

TEST(Baseline, FailsOnViolatedBoundsAndMissingPaths) {
  const auto checks = parse_baseline(
      R"({"checks": [{"path": "a.b", "min": 1, "max": 3},
                     {"path": "a.missing", "min": 0}]})");
  const auto failures = check_against_baseline(checks, R"({"a": {"b": 9}})");
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_NE(failures[0].find("a.b"), std::string::npos) << failures[0];
  EXPECT_NE(failures[1].find("a.missing"), std::string::npos) << failures[1];
}

}  // namespace
}  // namespace socrates
