// Tests for the Milepost-style static feature extractor.
#include <gtest/gtest.h>

#include "features/features.hpp"
#include "ir/parser.hpp"
#include "kernels/sources.hpp"
#include "support/error.hpp"

namespace socrates::features {
namespace {

FeatureVector features_of(const char* src, const char* fn_name = nullptr) {
  static std::vector<ir::TranslationUnit> keep_alive;
  keep_alive.push_back(ir::parse(src));
  const auto& tu = keep_alive.back();
  const ir::FunctionDecl* fn =
      fn_name ? tu.find_function(fn_name) : tu.functions().front();
  return extract_features(*fn);
}

TEST(Features, NamesAlignWithCount) {
  EXPECT_EQ(FeatureVector::names().size(), kFeatureCount);
  for (const auto& n : FeatureVector::names()) EXPECT_FALSE(n.empty());
}

TEST(Features, CountsLoopsAndDepth) {
  const auto f = features_of(
      "void f(int n) { int i; int j;\n"
      "for (i = 0; i < n; i++) for (j = 0; j < n; j++) g(i); \n"
      "while (n > 0) n--; }");
  EXPECT_EQ(f[kNumLoops], 3.0);
  EXPECT_EQ(f[kMaxLoopDepth], 2.0);
}

TEST(Features, PerfectNestDetection) {
  const auto f = features_of(
      "void f(int n) { int i; int j;\n"
      "for (i = 0; i < n; i++)\n"
      "  for (j = 0; j < n; j++)\n"
      "    a[i][j] = 0; }");
  EXPECT_EQ(f[kNumPerfectNests], 1.0);  // the outer loop's body is one loop
}

TEST(Features, OperatorMix) {
  const auto f = features_of(
      "void f(int a, int b) { int x; x = a + b - 1; x = a * b / 2; x = a % b;\n"
      "if (a < b && a != 0) x = ~a | b; }");
  EXPECT_EQ(f[kNumAddSub], 2.0);
  EXPECT_EQ(f[kNumMulDiv], 2.0);
  EXPECT_EQ(f[kNumMod], 1.0);
  EXPECT_EQ(f[kNumComparisons], 2.0);
  EXPECT_EQ(f[kNumLogicalOps], 1.0);
  EXPECT_EQ(f[kNumBitwiseOps], 2.0);
}

TEST(Features, CompoundAssignsCountBothWays) {
  const auto f = features_of("void f(int x) { x += 1; x *= 2; x = 0; }");
  EXPECT_EQ(f[kNumAssignments], 1.0);
  EXPECT_EQ(f[kNumCompoundAssigns], 2.0);
  EXPECT_EQ(f[kNumAddSub], 1.0);
  EXPECT_EQ(f[kNumMulDiv], 1.0);
}

TEST(Features, CallsAndDistinctCallees) {
  const auto f = features_of("void f(int x) { g(x); g(x + 1); h(g(x)); }");
  EXPECT_EQ(f[kNumCalls], 4.0);
  EXPECT_EQ(f[kNumDistinctCallees], 2.0);
}

TEST(Features, ArrayAccessChain) {
  const auto f = features_of("void f(int i, int j) { A[i][j] = B[i] + C[i][j][0]; }");
  EXPECT_EQ(f[kNumArrayAccesses], 6.0);  // every index node counts
  EXPECT_EQ(f[kMaxIndexChain], 3.0);
}

TEST(Features, ParamClassification) {
  const auto f = features_of("void f(int n, double *p, double A[8][8], float x) { }");
  EXPECT_EQ(f[kNumParams], 4.0);
  EXPECT_EQ(f[kNumPointerParams], 1.0);
  EXPECT_EQ(f[kNumArrayParams], 1.0);
  EXPECT_EQ(f[kNumFloatDecls], 3.0);  // p, A, x
  EXPECT_EQ(f[kNumIntDecls], 1.0);
}

TEST(Features, OmpPragmasCounted) {
  const auto f = features_of(
      "void f(int n) { int i;\n#pragma omp parallel for\n"
      "for (i = 0; i < n; i++) g(i);\n#pragma omp barrier\n}");
  EXPECT_EQ(f[kNumOmpPragmas], 2.0);
}

TEST(Features, FloatOpRatioBounds) {
  const auto fp = features_of("void f(double a) { double x; x = a * 2.0; }");
  const auto ip = features_of("void f(int a) { int x; x = a * 2; }");
  EXPECT_GT(fp[kFloatOpRatio], 0.5);
  EXPECT_LT(ip[kFloatOpRatio], 0.5);
}

TEST(Features, PrototypeRejected) {
  const auto tu = ir::parse("void f(int n);");
  EXPECT_THROW(extract_features(*tu.find_function("f")), ContractViolation);
}

// ---- over the real benchmark corpus (parameterized sanity) -------------------

class BenchmarkFeatures : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkFeatures, KernelIsFoundAndNonTrivial) {
  const auto tu = ir::parse(kernels::benchmark_source(GetParam()));
  const auto kf = extract_kernel_features(tu);
  ASSERT_EQ(kf.size(), 1u) << "exactly one kernel_* per benchmark";
  const auto& f = kf.front().second;
  EXPECT_GE(f[kNumLoops], 1.0);
  EXPECT_GE(f[kNumStmts], 3.0);
  EXPECT_GE(f[kMaxLoopDepth], 1.0);
}

TEST_P(BenchmarkFeatures, OmpBenchmarksHavePragmas) {
  const auto tu = ir::parse(kernels::benchmark_source(GetParam()));
  const auto kf = extract_kernel_features(tu);
  EXPECT_GE(kf.front().second[kNumOmpPragmas], 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkFeatures,
                         ::testing::ValuesIn(kernels::benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });
INSTANTIATE_TEST_SUITE_P(ExtendedBenchmarks, BenchmarkFeatures,
                         ::testing::ValuesIn(kernels::extended_benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });


TEST(Features, MatmulDeeperThanMatvec) {
  const auto mm = ir::parse(kernels::benchmark_source("2mm"));
  const auto mv = ir::parse(kernels::benchmark_source("mvt"));
  const auto f_mm = extract_kernel_features(mm).front().second;
  const auto f_mv = extract_kernel_features(mv).front().second;
  EXPECT_GT(f_mm[kMaxLoopDepth], f_mv[kMaxLoopDepth]);
}

TEST(Features, NussinovIsBranchyAndCallsHelpers) {
  const auto tu = ir::parse(kernels::benchmark_source("nussinov"));
  const auto f = extract_kernel_features(tu).front().second;
  EXPECT_GE(f[kNumIfs], 3.0);
  EXPECT_GE(f[kNumCalls], 4.0);
}

}  // namespace
}  // namespace socrates::features
