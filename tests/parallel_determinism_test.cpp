// The determinism contract of docs/PIPELINE.md: every parallel stage
// produces output bit-identical to a serial run at any job count,
// because each task derives its randomness from (master seed, task
// index) and writes only to its own result slot.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "cobayn/cobayn.hpp"
#include "cobayn/evaluation.hpp"
#include "dse/dse.hpp"
#include "dse/two_stage.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "observability/trace.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/task_pool.hpp"

namespace socrates {
namespace {

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

// save_profile writes hexfloat doubles (exact round trip), so equal
// strings means bit-identical profiles.
std::string profile_bytes(const std::vector<dse::ProfiledPoint>& points) {
  std::ostringstream out;
  dse::save_profile(out, points);
  return out.str();
}

TEST(ParallelDeterminism, DseProfileIsByteIdenticalAtAnyJobCount) {
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& kernel = kernels::find_benchmark("2mm").model;

  TaskPool serial(1);
  const auto baseline =
      dse::full_factorial_dse(model(), kernel, space, 3, 777, 1.0, &serial);
  const std::string baseline_bytes = profile_bytes(baseline);

  for (const std::size_t jobs : {2u, 8u}) {
    TaskPool pool(jobs);
    const auto parallel =
        dse::full_factorial_dse(model(), kernel, space, 3, 777, 1.0, &pool);
    EXPECT_EQ(profile_bytes(parallel), baseline_bytes) << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, TracingDoesNotPerturbResultsAndSpanCountsMatch) {
  // docs/OBSERVABILITY.md promises tracing never perturbs results: with
  // the global tracer enabled (DSE spans go there), the profile stays
  // byte-identical at any job count, and the *number* of spans per
  // category is identical too — only timings and lanes may differ.
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& kernel = kernels::find_benchmark("mvt").model;
  Tracer& tracer = Tracer::global();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);

  const auto run = [&](std::size_t jobs) {
    tracer.clear();
    TaskPool pool(jobs);
    const auto profile =
        dse::full_factorial_dse(model(), kernel, space, 2, 777, 1.0, &pool);
    std::size_t dse_spans = 0;
    std::size_t task_spans = 0;
    for (const auto& e : tracer.snapshot()) {
      if (std::string_view(e.category) == "dse") ++dse_spans;
      if (std::string_view(e.category) == "taskpool") ++task_spans;
    }
    return std::tuple(profile_bytes(profile), dse_spans, task_spans);
  };

  const auto [base_bytes, base_dse, base_tasks] = run(1);
  EXPECT_EQ(base_dse, space.size());  // one span per design point
  EXPECT_EQ(base_tasks, space.size());
  for (const std::size_t jobs : {2u, 8u}) {
    const auto [bytes, dse_spans, task_spans] = run(jobs);
    EXPECT_EQ(bytes, base_bytes) << "jobs=" << jobs;
    EXPECT_EQ(dse_spans, base_dse) << "jobs=" << jobs;
    EXPECT_EQ(task_spans, base_tasks) << "jobs=" << jobs;
  }

  tracer.clear();
  tracer.set_enabled(was_enabled);
}

TEST(ParallelDeterminism, TwoStageExplorerIsByteIdenticalAtAnyJobCount) {
  // The explorer's GA decisions run on a serial stream and every
  // profiled point derives its noise from (seed, flat index), so the
  // whole search — candidate selection included — is reproducible at
  // any job count.
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& kernel = kernels::find_benchmark("2mm").model;
  dse::TwoStageExplorer::Params params;
  params.seed_configs = {4, 5, 6, 7};
  const dse::TwoStageExplorer explorer(params);

  TaskPool serial(1);
  dse::ExploreContext ctx{model(), kernel, space, 3, 777, 1.0, &serial, 1};
  const auto baseline = explorer.explore(ctx);
  const std::string baseline_bytes = profile_bytes(baseline.points);
  EXPECT_GT(baseline.points.size(), 0u);
  EXPECT_LE(baseline.evaluated, explorer.resolved_budget(space.size()));

  for (const std::size_t jobs : {2u, 8u}) {
    TaskPool pool(jobs);
    dse::ExploreContext pctx{model(), kernel, space, 3, 777, 1.0, &pool, 1};
    const auto parallel = explorer.explore(pctx);
    EXPECT_EQ(profile_bytes(parallel.points), baseline_bytes) << "jobs=" << jobs;
    EXPECT_EQ(parallel.evaluated, baseline.evaluated) << "jobs=" << jobs;
    EXPECT_EQ(parallel.generations, baseline.generations) << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, WarmSeededTwoStageIsByteIdenticalAtAnyJobCount) {
  // Warm-start seeds (the server's cross-tenant pool hands these over)
  // must preserve the determinism contract: same seeds + same arrival
  // order give the same profiled set at any job count, and the seeded
  // points are profiled first.
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& kernel = kernels::find_benchmark("2mm").model;
  dse::TwoStageExplorer::Params params;
  params.seed_configs = {4, 5};
  params.warm_flat_seeds = {17, 3, 91};
  const dse::TwoStageExplorer explorer(params);

  TaskPool serial(1);
  dse::ExploreContext ctx{model(), kernel, space, 3, 777, 1.0, &serial, 1};
  const auto baseline = explorer.explore(ctx);
  const std::string baseline_bytes = profile_bytes(baseline.points);
  ASSERT_GE(baseline.points.size(), 3u);
  // Every warm seed was actually profiled (the result list is ordered
  // by flat index, so membership — not position — is the contract),
  // and its measurements are bit-identical to a direct profile of the
  // same flat index.
  const auto direct = dse::detail::profile_flat_supervised(ctx, params.warm_flat_seeds);
  ASSERT_EQ(direct.points.size(), params.warm_flat_seeds.size());
  for (const auto& want : direct.points) {
    const bool present = std::any_of(
        baseline.points.begin(), baseline.points.end(), [&](const auto& p) {
          return p.config_index == want.config_index &&
                 p.configuration.threads == want.configuration.threads &&
                 p.configuration.binding == want.configuration.binding &&
                 p.exec_time_mean_s == want.exec_time_mean_s &&
                 p.power_mean_w == want.power_mean_w;
        });
    EXPECT_TRUE(present) << "warm seed missing: " << want.config_name;
  }

  for (const std::size_t jobs : {2u, 8u}) {
    TaskPool pool(jobs);
    dse::ExploreContext pctx{model(), kernel, space, 3, 777, 1.0, &pool, 1};
    EXPECT_EQ(profile_bytes(explorer.explore(pctx).points), baseline_bytes)
        << "jobs=" << jobs;
  }

  // The seeds are part of the explorer identity (artifact-cache key).
  dse::TwoStageExplorer::Params other = params;
  other.warm_flat_seeds = {3, 17, 91};
  Hasher a;
  Hasher b;
  explorer.add_to_key(a);
  dse::TwoStageExplorer(other).add_to_key(b);
  EXPECT_NE(a.digest(), b.digest());

  // A seed outside the space is a caller bug, named.
  dse::TwoStageExplorer::Params bad = params;
  bad.warm_flat_seeds = {space.size()};
  EXPECT_THROW(dse::TwoStageExplorer(bad).explore(ctx), ContractViolation);
}

TEST(ParallelDeterminism, TwoStagePointsMatchTheFullSweepBitForBit) {
  // Any point the strategy profiles is the same point the full sweep
  // would have measured: noise comes from (seed, flat), not from the
  // exploration order.
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& kernel = kernels::find_benchmark("atax").model;
  TaskPool pool(4);
  const auto full = dse::full_factorial_dse(model(), kernel, space, 2, 99, 1.0, &pool);

  dse::TwoStageExplorer::Params params;
  params.seed_configs = {5};
  dse::ExploreContext ctx{model(), kernel, space, 2, 99, 1.0, &pool, 1};
  const auto explored = dse::TwoStageExplorer(params).explore(ctx);
  ASSERT_GT(explored.points.size(), 0u);
  for (const auto& p : explored.points) {
    const auto match = std::find_if(full.begin(), full.end(), [&](const auto& q) {
      return q.config_index == p.config_index &&
             q.configuration.threads == p.configuration.threads &&
             q.configuration.binding == p.configuration.binding;
    });
    ASSERT_NE(match, full.end());
    EXPECT_EQ(profile_bytes({p}), profile_bytes({*match}));
  }
}

TEST(ParallelDeterminism, DseWorkScaleAndSeedStillMatter) {
  // Determinism must not come from ignoring the inputs: different seed
  // or scale still changes the profile.
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& kernel = kernels::find_benchmark("atax").model;
  TaskPool pool(4);
  const auto a = dse::full_factorial_dse(model(), kernel, space, 2, 1, 1.0, &pool);
  const auto b = dse::full_factorial_dse(model(), kernel, space, 2, 2, 1.0, &pool);
  const auto c = dse::full_factorial_dse(model(), kernel, space, 2, 1, 1.5, &pool);
  EXPECT_NE(profile_bytes(a), profile_bytes(b));
  EXPECT_NE(profile_bytes(a), profile_bytes(c));
}

TEST(ParallelDeterminism, CobaynModelIsByteIdenticalAtAnyJobCount) {
  const auto corpus = cobayn::make_corpus(20, 2018);

  TaskPool serial(1);
  cobayn::TrainOptions serial_opts;
  serial_opts.pool = &serial;
  const auto base = cobayn::CobaynModel::train(corpus, model(), serial_opts);
  std::ostringstream base_out;
  base.save(base_out);

  TaskPool pool(8);
  cobayn::TrainOptions parallel_opts;
  parallel_opts.pool = &pool;
  const auto par = cobayn::CobaynModel::train(corpus, model(), parallel_opts);
  std::ostringstream par_out;
  par.save(par_out);

  EXPECT_EQ(par_out.str(), base_out.str());

  // And the models behave identically: same CF predictions with the
  // same posteriors for an unseen kernel.
  const auto fv =
      cobayn::kernel_features_of_source(kernels::benchmark_source("correlation"));
  const auto base_pred = base.predict(fv, 4);
  const auto par_pred = par.predict(fv, 4);
  ASSERT_EQ(base_pred.size(), par_pred.size());
  for (std::size_t i = 0; i < base_pred.size(); ++i) {
    EXPECT_EQ(par_pred[i].config.level(), base_pred[i].config.level());
    EXPECT_EQ(par_pred[i].config.flag_bits(), base_pred[i].config.flag_bits());
    EXPECT_EQ(par_pred[i].probability, base_pred[i].probability);
  }
}

TEST(ParallelDeterminism, CrossValidationSummaryIdenticalAtAnyJobCount) {
  const auto corpus = cobayn::make_corpus(12, 5);

  TaskPool serial(1);
  cobayn::TrainOptions serial_opts;
  serial_opts.pool = &serial;
  const auto base = cobayn::cross_validate(corpus, model(), 2, serial_opts);

  TaskPool pool(8);
  cobayn::TrainOptions parallel_opts;
  parallel_opts.pool = &pool;
  const auto par = cobayn::cross_validate(corpus, model(), 2, parallel_opts);

  EXPECT_EQ(par.geomean_predicted_slowdown, base.geomean_predicted_slowdown);
  EXPECT_EQ(par.geomean_o3_slowdown, base.geomean_o3_slowdown);
  EXPECT_EQ(par.wins_vs_o3, base.wins_vs_o3);
  ASSERT_EQ(par.folds.size(), base.folds.size());
  for (std::size_t i = 0; i < base.folds.size(); ++i) {
    EXPECT_EQ(par.folds[i].kernel_name, base.folds[i].kernel_name);
    EXPECT_EQ(par.folds[i].predicted_slowdown(), base.folds[i].predicted_slowdown());
  }
}

}  // namespace
}  // namespace socrates
