// Tests for the observability layer: the span tracer (disabled-path
// no-op, ring buffer, Chrome export, thread lanes), the metrics
// registry, the log-threshold gating fix, and the statistics/monitor
// input-validation fixes that rode along in the same PR.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "margot/monitor.hpp"
#include "observability/metrics.hpp"
#include "observability/trace.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/statistics.hpp"

namespace socrates {
namespace {

// ---- Tracer ---------------------------------------------------------------

TEST(Tracer, DisabledSpanRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  {
    TraceSpan span("work", "test", tracer);
    EXPECT_FALSE(span.active());
    span.set_arg("n", 42);
  }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, EnabledSpanLandsInTheRing) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span("work", "test", tracer);
    EXPECT_TRUE(span.active());
    span.set_arg("n", 42);
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_STREQ(events[0].arg_name, "n");
  EXPECT_EQ(events[0].arg_value, 42);
  EXPECT_GE(events[0].duration_us, 0);
}

TEST(Tracer, EnablingMidStreamOnlyRecordsLaterSpans) {
  Tracer tracer;
  { TraceSpan span("before", "test", tracer); }
  tracer.set_enabled(true);
  { TraceSpan span("after", "test", tracer); }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
}

TEST(Tracer, RingKeepsTheNewestEventsOldestFirst) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  static const char* kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (const char* name : kNames) {
    TraceEvent e;
    e.name = name;
    e.category = "test";
    tracer.record(e);
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events.front().name, "e2");  // e0/e1 overwritten
  EXPECT_STREQ(events.back().name, "e5");
}

TEST(Tracer, ClearAndSetCapacityResetTheRing) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  tracer.record(TraceEvent{"x", "test", 0, 0, 0, nullptr, 0});
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  tracer.set_capacity(2);
  EXPECT_EQ(tracer.capacity(), 2u);
  for (int i = 0; i < 3; ++i)
    tracer.record(TraceEvent{"y", "test", 0, 0, 0, nullptr, 0});
  EXPECT_EQ(tracer.snapshot().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(Tracer, ChromeExportIsWellFormedJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span("stage \"quoted\"", "pipeline", tracer);
    span.set_arg("bytes", 7);
  }
  { TraceSpan span("plain", "taskpool", tracer); }
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"args\":{\"bytes\":7}"), std::string::npos);
  // Balanced braces => structurally sound for this generator.
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Tracer, ThreadsGetDistinctLanesAndNoEventIsLost) {
  Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansEach; ++i) TraceSpan span("t", "mt", tracer);
    });
  for (auto& t : threads) t.join();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kSpansEach));
  std::set<std::uint32_t> lanes;
  for (const auto& e : events) lanes.insert(e.lane);
  EXPECT_EQ(lanes.size(), static_cast<std::size_t>(kThreads));
}

TEST(Tracer, EnvRequestDetection) {
  const char* old = std::getenv("SOCRATES_TRACE");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("SOCRATES_TRACE", "1", 1);
  EXPECT_TRUE(Tracer::env_requests_tracing());
  ::setenv("SOCRATES_TRACE", "0", 1);
  EXPECT_FALSE(Tracer::env_requests_tracing());
  ::unsetenv("SOCRATES_TRACE");
  EXPECT_FALSE(Tracer::env_requests_tracing());
  if (old != nullptr) ::setenv("SOCRATES_TRACE", saved.c_str(), 1);
}

// ---- Metrics registry ------------------------------------------------------

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test.counter");
  c.add(3);
  c.add(2);
  EXPECT_EQ(c.value(), 5u);
  // Same name, same object: references stay valid.
  EXPECT_EQ(&registry.counter("test.counter"), &c);

  registry.gauge("test.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("test.gauge").value(), 2.5);

  Histogram& h = registry.histogram("test.hist");
  h.observe(1.0);
  h.observe(3.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Metrics, TextAndCsvExportsAreDeterministic) {
  MetricsRegistry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.histogram("c.hist").observe(4.0);

  std::ostringstream text;
  registry.write_text(text);
  const std::string t = text.str();
  EXPECT_LT(t.find("a.first"), t.find("b.second"));  // sorted by name

  std::ostringstream csv;
  registry.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_EQ(c.rfind("metric,value\n", 0), 0u);  // header first
  EXPECT_NE(c.find("a.first,1"), std::string::npos);
  EXPECT_NE(c.find("c.hist.count,1"), std::string::npos);
  EXPECT_NE(c.find("c.hist.mean,4"), std::string::npos);
}

TEST(Metrics, ResetZeroesInPlaceKeepingReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("r.counter");
  c.add(9);
  Histogram& h = registry.histogram("r.hist");
  h.observe(1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);
  EXPECT_EQ(registry.counter("r.counter").value(), 1u);
}

TEST(Metrics, CountersAreThreadSafe) {
  MetricsRegistry registry;
  Counter& c = registry.counter("mt.counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

// ---- LogLine gating (satellite bugfix) -------------------------------------

/// Counts every character reaching the sink.
class CountingBuf : public std::streambuf {
 public:
  std::size_t written = 0;

 protected:
  int overflow(int c) override {
    ++written;
    return c;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    written += static_cast<std::size_t>(n);
    return n;
  }
};

struct LogLevelGuard {
  LogLevel saved = Log::level();
  ~LogLevelGuard() {
    Log::set_level(saved);
    Log::set_sink(nullptr);
  }
};

/// Streaming this counts how often an operand was actually formatted.
struct FormatProbe {
  int* formatted;
};

std::ostream& operator<<(std::ostream& os, const FormatProbe& p) {
  ++*p.formatted;
  return os << "probe";
}

TEST(LogGating, SuppressedLineNeverFormatsNorTouchesTheSink) {
  LogLevelGuard guard;
  CountingBuf buf;
  std::ostream sink(&buf);
  Log::set_sink(&sink);
  Log::set_level(LogLevel::kInfo);

  int formatted = 0;
  const FormatProbe probe{&formatted};
  // A kDebug line under kInfo: the threshold must gate *before* any
  // operand is formatted and before the sink sees a byte.
  log_debug() << "never " << 123 << probe;
  EXPECT_EQ(buf.written, 0u);
  EXPECT_EQ(formatted, 0);

  // The same operand chain at an enabled level formats and reaches the
  // sink exactly once.
  log_warn() << "visible " << 123 << probe;
  EXPECT_GT(buf.written, 0u);
  EXPECT_EQ(formatted, 1);
}

TEST(LogGating, EnabledReflectsThreshold) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::kWarn);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kOff);
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
  EXPECT_FALSE(Log::enabled(LogLevel::kOff));
}

// ---- statistics input validation (satellite bugfix) ------------------------

TEST(StatisticsValidation, QuantileRejectsNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(quantile({1.0, nan, 3.0}, 0.5), ContractViolation);
  EXPECT_THROW(quantile({1.0, 2.0}, nan), ContractViolation);
  EXPECT_THROW(boxplot_summary({1.0, nan}), ContractViolation);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.5), 2.0);  // clean input unaffected
}

TEST(StatisticsValidation, BoxplotWhiskersOnZeroIqrData) {
  // Seven identical samples and one far outlier: q1 == q3, so the
  // fences collapse onto the box and 1000 is the only outlier.
  const auto s = boxplot_summary({10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1000.0});
  EXPECT_DOUBLE_EQ(s.whisker_low, 10.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 10.0);
  EXPECT_EQ(s.n_outliers, 1u);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(StatisticsValidation, BoxplotWhiskersFallBackToBoxOnNonFiniteFences) {
  // All-infinite data: the IQR is inf - inf = NaN, every fence test
  // fails, and the whiskers must fall back to the box edges instead of
  // the inverted whisker_low == max corruption.
  const double inf = std::numeric_limits<double>::infinity();
  const auto s = boxplot_summary({inf, inf, inf, inf});
  EXPECT_DOUBLE_EQ(s.whisker_low, s.q1);
  EXPECT_DOUBLE_EQ(s.whisker_high, s.q3);
  EXPECT_LE(s.whisker_low, s.whisker_high);
}

TEST(MonitorValidation, ZeroWindowIsRejectedWithAClearMessage) {
  try {
    margot::CircularMonitor monitor(0);
    FAIL() << "window=0 must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("window"), std::string::npos);
  }
}

}  // namespace
}  // namespace socrates
