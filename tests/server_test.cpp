// Tests for the overload-safe multi-tenant AS-RTM server
// (server/server.hpp): token-bucket and circuit-breaker ingress
// control, SOCRATES_SERVER_* knob parsing, feedback routing through
// the sharded rings, watchdog-driven shard restarts with checkpoint
// recovery, crash-equivalent destruction, and the programmatic chaos
// sites (ServerChaos*, also run by the chaos-smoke CTest preset).
#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>

#include "margot/asrtm.hpp"
#include "server/circuit_breaker.hpp"
#include "server/server.hpp"
#include "server/token_bucket.hpp"
#include "support/chaos.hpp"
#include "support/env.hpp"
#include "support/error.hpp"

namespace socrates::server {
namespace {

namespace fs = std::filesystem;
using margot::KnowledgeBase;
using margot::OperatingPoint;
using margot::Rank;
using margot::RankDirection;

KnowledgeBase make_kb(std::size_t points = 4) {
  KnowledgeBase kb({"threads"}, {"exec_time_s", "power_w"});
  for (std::size_t i = 0; i < points; ++i) {
    OperatingPoint op;
    op.knobs = {static_cast<int>(i + 1)};
    op.metrics = {{1.0 + 0.1 * static_cast<double>(i), 0.01},
                  {50.0 + static_cast<double>(i), 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

void configure_min_time(margot::Asrtm& asrtm) {
  asrtm.set_rank(Rank::minimize_exec_time(0));
}

// ---- token bucket ------------------------------------------------------------------

TEST(TokenBucket, DefaultIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.admit(0.0));
}

TEST(TokenBucket, BurstThenRefusal) {
  TokenBucket bucket(10.0, 4.0);  // 10/s, burst 4, starts full
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.admit(0.0));
  EXPECT_FALSE(bucket.admit(0.0));  // burst exhausted, no time passed
}

TEST(TokenBucket, RefillsWithTime) {
  TokenBucket bucket(10.0, 4.0);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(bucket.admit(0.0));
  EXPECT_FALSE(bucket.admit(0.05));  // 0.5 tokens refilled: not enough
  EXPECT_TRUE(bucket.admit(0.2));    // 2 tokens by now
  EXPECT_TRUE(bucket.admit(100.0));  // refill caps at burst, still admits
}

TEST(TokenBucket, RejectsNonsenseParameters) {
  EXPECT_THROW(TokenBucket(-1.0, 4.0), ContractViolation);
  EXPECT_THROW(TokenBucket(10.0, 0.5), ContractViolation);
}

// ---- circuit breaker ---------------------------------------------------------------

CircuitBreaker::Options small_breaker() {
  CircuitBreaker::Options o;
  o.error_threshold = 4;
  o.window_s = 1.0;
  o.base_cooldown_s = 0.5;
  o.max_cooldown_s = 8.0;
  o.probe_quota = 2;
  return o;
}

TEST(CircuitBreaker, TripsAfterThresholdErrorsInWindow) {
  CircuitBreaker breaker(small_breaker());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 3; ++i) breaker.record_error(0.1);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.record_error(0.2);  // 4th error inside the window
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow(0.3));  // cooling down
}

TEST(CircuitBreaker, SlidingWindowForgetsOldErrors) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 3; ++i) breaker.record_error(0.1);
  // The window expires; the next error starts a fresh count.
  breaker.record_error(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbesCloseTheBreaker) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record_error(0.0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(0.1));
  EXPECT_TRUE(breaker.allow(0.6));  // cooldown (0.5s) elapsed -> half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.record_ok(0.7);
  breaker.record_ok(0.8);  // probe quota 2 reached
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensWithDoubledCooldown) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record_error(0.0);
  ASSERT_TRUE(breaker.allow(0.6));  // half-open
  breaker.record_error(0.7);        // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_DOUBLE_EQ(breaker.cooldown_s(), 1.0);  // 0.5 * 2^1
  EXPECT_FALSE(breaker.allow(1.2));   // the first cooldown would have elapsed
  EXPECT_TRUE(breaker.allow(1.8));    // the doubled one has
}

TEST(CircuitBreaker, ClosingResetsTheBackoff) {
  CircuitBreaker breaker(small_breaker());
  for (int i = 0; i < 4; ++i) breaker.record_error(0.0);
  ASSERT_TRUE(breaker.allow(0.6));
  breaker.record_ok(0.7);
  breaker.record_ok(0.8);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_DOUBLE_EQ(breaker.cooldown_s(), 0.5);  // back to the base
}

TEST(CircuitBreaker, CooldownIsCapped) {
  CircuitBreaker breaker(small_breaker());
  double now = 0.0;
  for (int trip = 0; trip < 10; ++trip) {
    while (breaker.state() != CircuitBreaker::State::kOpen) breaker.record_error(now);
    now += breaker.cooldown_s() + 0.1;
    ASSERT_TRUE(breaker.allow(now));  // half-open
    breaker.record_error(now);        // fail the probe -> re-trip
  }
  EXPECT_DOUBLE_EQ(breaker.cooldown_s(), 8.0);  // max_cooldown_s
}

// ---- SOCRATES_SERVER_* knobs -------------------------------------------------------

class ServerEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    for (const char* name :
         {"SOCRATES_SERVER_SHARDS", "SOCRATES_SERVER_RING", "SOCRATES_SERVER_BATCH",
          "SOCRATES_SERVER_MAX_TENANTS", "SOCRATES_SERVER_GROUP_COMMIT",
          "SOCRATES_SERVER_JOURNAL_CAP", "SOCRATES_SERVER_POLICY",
          "SOCRATES_CHECKPOINT_GENERATIONS", "SOCRATES_CHECKPOINT_FSYNC",
          "SOCRATES_CHECKPOINT_PROBE_MS"}) {
      ::unsetenv(name);
    }
    env::reset_warnings();
  }
};

TEST_F(ServerEnvTest, DefaultsWhenUnset) {
  const ServerOptions o = ServerOptions::from_env();
  const ServerOptions d;
  EXPECT_EQ(o.shards, d.shards);
  EXPECT_EQ(o.ring_capacity, d.ring_capacity);
  EXPECT_EQ(o.batch_drain, d.batch_drain);
  EXPECT_EQ(o.max_tenants, d.max_tenants);
  EXPECT_EQ(o.group_commit, d.group_commit);
  EXPECT_EQ(o.policy, BackpressurePolicy::kBlock);
}

TEST_F(ServerEnvTest, ValidKnobsPassThrough) {
  ::setenv("SOCRATES_SERVER_SHARDS", "3", 1);
  ::setenv("SOCRATES_SERVER_RING", "512", 1);
  ::setenv("SOCRATES_SERVER_BATCH", "32", 1);
  ::setenv("SOCRATES_SERVER_GROUP_COMMIT", "16", 1);
  ::setenv("SOCRATES_SERVER_POLICY", "drop-oldest", 1);
  const ServerOptions o = ServerOptions::from_env();
  EXPECT_EQ(o.shards, 3u);
  EXPECT_EQ(o.ring_capacity, 512u);
  EXPECT_EQ(o.batch_drain, 32u);
  EXPECT_EQ(o.group_commit, 16u);
  EXPECT_EQ(o.policy, BackpressurePolicy::kDropOldest);
}

TEST_F(ServerEnvTest, BadValuesClampOrFallBackInsteadOfMisparsing) {
  ::setenv("SOCRATES_SERVER_SHARDS", "0", 1);        // below minimum -> clamp to 1
  ::setenv("SOCRATES_SERVER_RING", "banana", 1);     // garbage -> default
  ::setenv("SOCRATES_SERVER_GROUP_COMMIT", "-4", 1); // negative -> clamp to 1
  ::setenv("SOCRATES_SERVER_POLICY", "newest-wins", 1);  // unknown -> block
  const ServerOptions o = ServerOptions::from_env();
  const ServerOptions d;
  EXPECT_EQ(o.shards, 1u);
  EXPECT_EQ(o.ring_capacity, d.ring_capacity);
  EXPECT_EQ(o.group_commit, 1u);
  EXPECT_EQ(o.policy, BackpressurePolicy::kBlock);
}

TEST_F(ServerEnvTest, RejectPolicyParses) {
  ::setenv("SOCRATES_SERVER_POLICY", "reject", 1);
  EXPECT_EQ(ServerOptions::from_env().policy, BackpressurePolicy::kReject);
}

TEST_F(ServerEnvTest, CheckpointResilienceKnobsFlowThroughTheCheckpointEnv) {
  // One setting governs embedded and served AS-RTMs: the server reads
  // the checkpoint layer's own SOCRATES_CHECKPOINT_* knobs.
  ::setenv("SOCRATES_CHECKPOINT_GENERATIONS", "4", 1);
  ::setenv("SOCRATES_CHECKPOINT_FSYNC", "1", 1);
  ::setenv("SOCRATES_CHECKPOINT_PROBE_MS", "500", 1);
  const ServerOptions o = ServerOptions::from_env();
  EXPECT_EQ(o.checkpoint_generations, 4u);
  EXPECT_TRUE(o.checkpoint_fsync);
  EXPECT_DOUBLE_EQ(o.checkpoint_probe_base_s, 0.5);
}

// ---- the server itself -------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ChaosEngine::global().disarm();
    dir_ = fs::temp_directory_path() /
           ("socrates_server." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ChaosEngine::global().disarm();
    fs::remove_all(dir_);
  }

  /// Small, watchdog-quiet options for functional tests.
  ServerOptions base_options() {
    ServerOptions o;
    o.shards = 2;
    o.ring_capacity = 64;
    o.batch_drain = 16;
    o.max_tenants = 8;
    o.shard_stall_deadline_s = 60.0;  // watchdog effectively off
    return o;
  }

  fs::path dir_;
};

TEST_F(ServerTest, FeedbackFlowsThroughToTheTenantAsrtm) {
  Server server(base_options());
  Server::TenantHandle a = 0;
  Server::TenantHandle b = 0;
  ASSERT_TRUE(server.register_tenant("alpha", make_kb(), configure_min_time, &a));
  ASSERT_TRUE(server.register_tenant("beta", make_kb(), configure_min_time, &b));
  EXPECT_EQ(server.tenant_count(), 2u);
  EXPECT_NE(server.shard_of(a), server.shard_of(b));  // round-robin over 2 shards

  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(server.submit_feedback(a, 0, 0, 1.3), Admission::kAccepted);
  }
  ASSERT_TRUE(server.drain(5.0));

  EXPECT_EQ(server.tenant_status(a).applied, 10u);
  EXPECT_EQ(server.tenant_status(b).applied, 0u);  // isolation
  server.with_tenant(a, [](margot::Asrtm& asrtm) {
    EXPECT_GT(asrtm.correction(0), 1.0);  // observed 1.3 vs expected 1.0
  });
  server.with_tenant(b, [](margot::Asrtm& asrtm) {
    EXPECT_DOUBLE_EQ(asrtm.correction(0), 1.0);
  });
  EXPECT_LT(server.decide(a), make_kb().size());

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.drained, 10u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(ServerTest, AdmissionCapRejectsTenantsBeyondMax) {
  ServerOptions options = base_options();
  options.max_tenants = 2;
  Server server(options);
  Server::TenantHandle h = 0;
  EXPECT_TRUE(server.register_tenant("t0", make_kb(), {}, &h));
  EXPECT_TRUE(server.register_tenant("t1", make_kb(), {}, &h));
  EXPECT_FALSE(server.register_tenant("t2", make_kb(), {}, &h));
  EXPECT_EQ(server.tenant_count(), 2u);
}

TEST_F(ServerTest, TokenBucketRateLimitsATenant) {
  ServerOptions options = base_options();
  options.rate_limit_per_s = 10.0;
  options.rate_burst = 4.0;
  Server server(options);
  std::atomic<double> now{0.0};
  server.set_time_source([&now] { return now.load(); });
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("limited", make_kb(), {}, &h));

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted);
  }
  EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kRateLimited);
  now.store(1.0);  // 10 tokens refill (capped at burst 4)
  EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted);
  EXPECT_GE(server.stats().rate_limited, 1u);
}

TEST_F(ServerTest, NonFiniteFeedbackFloodTripsTheBreaker) {
  ServerOptions options = base_options();
  options.breaker.error_threshold = 8;
  options.breaker.base_cooldown_s = 0.5;
  options.breaker.probe_quota = 2;
  Server server(options);
  std::atomic<double> now{0.0};
  server.set_time_source([&now] { return now.load(); });
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("nan-flood", make_kb(), {}, &h));

  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(server.submit_feedback(h, 0, 0, nan), Admission::kInvalid);
  }
  // Breaker open: even healthy feedback is quarantined now.
  EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kQuarantined);
  EXPECT_EQ(server.tenant_status(h).breaker, CircuitBreaker::State::kOpen);
  EXPECT_EQ(server.stats().breaker_trips, 1u);

  // After the cooldown the tenant is probed and, behaving, readmitted.
  now.store(0.6);
  EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted);
  EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted);
  EXPECT_EQ(server.tenant_status(h).breaker, CircuitBreaker::State::kClosed);
  ASSERT_TRUE(server.drain(5.0));
}

TEST_F(ServerTest, OutOfRangeOpOrMetricIsRefusedAtIngressNotTheWorker) {
  // Regression: these used to be enqueued verbatim and trip
  // Asrtm::send_feedback's contract on the shard worker thread, where
  // the escaping exception would std::terminate the whole server.
  ServerOptions options = base_options();
  options.breaker.error_threshold = 4;
  options.breaker.base_cooldown_s = 60.0;  // stays open for the whole test
  Server server(options);
  std::atomic<double> now{0.0};
  server.set_time_source([&now] { return now.load(); });
  Server::TenantHandle bad = 0;
  Server::TenantHandle good = 0;
  ASSERT_TRUE(server.register_tenant("malformed", make_kb(), configure_min_time, &bad));
  ASSERT_TRUE(server.register_tenant("bystander", make_kb(), configure_min_time, &good));
  const std::size_t ops = make_kb().size();

  EXPECT_EQ(server.submit_feedback(bad, ops, 0, 1.2), Admission::kInvalid);
  EXPECT_EQ(server.submit_feedback(bad, 0, 99, 1.2), Admission::kInvalid);
  EXPECT_EQ(server.submit_feedback(bad, ops + 7, 99, 1.2), Admission::kInvalid);
  // The flood trips the breaker like non-finite feedback does.
  EXPECT_EQ(server.submit_feedback(bad, ops, 0, 1.2), Admission::kInvalid);
  EXPECT_EQ(server.submit_feedback(bad, 0, 0, 1.2), Admission::kQuarantined);
  EXPECT_EQ(server.tenant_status(bad).breaker, CircuitBreaker::State::kOpen);

  // The server (and the bad tenant's shard) is alive and isolated:
  // other tenants' feedback still flows end to end.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(server.submit_feedback(good, 0, 0, 1.3), Admission::kAccepted);
  }
  ASSERT_TRUE(server.drain(5.0));
  EXPECT_EQ(server.tenant_status(good).applied, 5u);
  EXPECT_EQ(server.tenant_status(bad).applied, 0u);
  EXPECT_EQ(server.stats().invalid, 4u);
}

TEST_F(ServerTest, RebuildFailureQuarantinesTheTenantNotTheServer) {
  // Regression: a tenant-supplied configure functor that throws during
  // a watchdog-driven rebuild used to escape watchdog_loop and
  // terminate the process.  Now the tenant is quarantined on its old
  // runtime and every other tenant on the shard still recovers.
  ServerOptions options = base_options();
  options.shards = 1;
  options.shard_stall_deadline_s = 0.15;
  options.watchdog_period_s = 0.03;
  options.restart_backoff_base_s = 0.0;
  options.breaker.base_cooldown_s = 60.0;  // forced-open stays open
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 1;  // flush-per-event: the restart loses nothing
  Server server(options);
  std::atomic<double> now{0.0};
  server.set_time_source([&now] { return now.load(); });

  std::atomic<int> flaky_configs{0};
  const auto flaky_configure = [&flaky_configs](margot::Asrtm& asrtm) {
    if (flaky_configs.fetch_add(1) > 0) throw Error("configure broke on rebuild");
    configure_min_time(asrtm);
  };
  Server::TenantHandle flaky = 0;
  Server::TenantHandle steady = 0;
  ASSERT_TRUE(server.register_tenant("flaky", make_kb(), flaky_configure, &flaky));
  ASSERT_TRUE(server.register_tenant("steady", make_kb(), configure_min_time, &steady));

  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(server.submit_feedback(steady, 0, 0, 1.3), Admission::kAccepted);
  }
  ASSERT_TRUE(server.drain(5.0));
  double correction_before = 0.0;
  server.with_tenant(steady, [&](margot::Asrtm& asrtm) {
    correction_before = asrtm.correction(0);
  });
  ASSERT_GT(correction_before, 1.0);

  server.inject_stall(0, 1.0);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stats().shard_restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(server.stats().shard_restarts, 1u) << "watchdog never fired";
  EXPECT_GE(flaky_configs.load(), 2) << "rebuild never reran the configure functor";

  // The flaky tenant is quarantined but still serves reads from its
  // pre-restart runtime.
  EXPECT_EQ(server.submit_feedback(flaky, 0, 0, 1.2), Admission::kQuarantined);
  EXPECT_EQ(server.tenant_status(flaky).breaker, CircuitBreaker::State::kOpen);
  EXPECT_LT(server.decide(flaky), make_kb().size());

  // The steady tenant recovered fully: journal replayed, shard alive.
  server.with_tenant(steady, [&](margot::Asrtm& asrtm) {
    EXPECT_DOUBLE_EQ(asrtm.correction(0), correction_before);
  });
  ASSERT_EQ(server.submit_feedback(steady, 0, 0, 1.3), Admission::kAccepted);
  ASSERT_TRUE(server.drain(5.0));
}

TEST_F(ServerTest, GoalFlappingQuarantinesTheTenant) {
  ServerOptions options = base_options();
  options.goal_update_threshold = 4;
  options.goal_window_s = 1.0;
  options.breaker.error_threshold = 4;
  Server server(options);
  std::atomic<double> now{0.0};
  server.set_time_source([&now] { return now.load(); });
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("flapper", make_kb(),
                                     [](margot::Asrtm& asrtm) {
                                       asrtm.set_rank(Rank::minimize_exec_time(0));
                                       asrtm.add_constraint(
                                           {0, margot::ComparisonOp::kLess, 2.0, 0, 0.0});
                                     },
                                     &h));

  // 4 updates inside the window are within contract...
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.update_goal(h, 0, 1.5 + 0.1 * i), Admission::kAccepted);
  }
  // ...every one past the threshold is a breaker error; 4 of those trip it.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(server.update_goal(h, 0, 1.5), Admission::kInvalid);
  }
  EXPECT_EQ(server.update_goal(h, 0, 1.5), Admission::kQuarantined);
  EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kQuarantined);
  EXPECT_GE(server.stats().breaker_trips, 1u);
}

TEST_F(ServerTest, RejectPolicyShedsWhenTheRingIsFull) {
  ServerOptions options = base_options();
  options.shards = 1;
  options.ring_capacity = 16;
  options.policy = BackpressurePolicy::kReject;
  Server server(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("bursty", make_kb(), {}, &h));
  // Stall the lone shard so nothing drains while we overfill the ring.
  server.inject_stall(0, 0.5);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::size_t accepted = 0;
  std::size_t shed = 0;
  for (int i = 0; i < 64; ++i) {
    const Admission result = server.submit_feedback(h, 0, 0, 1.2);
    if (result == Admission::kAccepted) ++accepted;
    if (result == Admission::kShed) ++shed;
  }
  EXPECT_GT(shed, 0u) << "a full ring under kReject must refuse events";
  EXPECT_LE(accepted, 16u + 1u);
  ASSERT_TRUE(server.drain(5.0));
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, accepted);
  EXPECT_EQ(stats.drained, accepted);  // accepted events all land eventually
}

TEST_F(ServerTest, DropOldestPolicyBoundsTheRingWithoutBlocking) {
  ServerOptions options = base_options();
  options.shards = 1;
  options.ring_capacity = 16;
  options.policy = BackpressurePolicy::kDropOldest;
  Server server(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("telemetry", make_kb(), {}, &h));
  server.inject_stall(0, 0.5);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted)
        << "drop-oldest never refuses the newest event";
  }
  ASSERT_TRUE(server.drain(5.0));
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 64u);
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.drained + stats.shed, stats.accepted);  // conservation
}

TEST_F(ServerTest, WatchdogRestartsAStalledShardAndRecoversItsTenants) {
  ServerOptions options = base_options();
  options.shards = 1;
  options.shard_stall_deadline_s = 0.15;
  options.watchdog_period_s = 0.03;
  options.restart_backoff_base_s = 0.0;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 1;  // flush-per-event: the restart loses nothing
  Server server(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("survivor", make_kb(), configure_min_time, &h));

  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.3), Admission::kAccepted);
  }
  ASSERT_TRUE(server.drain(5.0));
  double correction_before = 0.0;
  server.with_tenant(h, [&](margot::Asrtm& asrtm) {
    correction_before = asrtm.correction(0);
  });
  ASSERT_GT(correction_before, 1.0);

  // Park the worker far past the watchdog deadline and wait for the
  // restart to be detected and completed.
  server.inject_stall(0, 1.0);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stats().shard_restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(server.stats().shard_restarts, 1u) << "watchdog never fired";

  // The rebuilt tenant replayed its journal: learned state intact.
  server.with_tenant(h, [&](margot::Asrtm& asrtm) {
    EXPECT_DOUBLE_EQ(asrtm.correction(0), correction_before);
  });
  // And the shard is alive again: new feedback still flows.
  ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.3), Admission::kAccepted);
  ASSERT_TRUE(server.drain(5.0));
}

TEST_F(ServerTest, CrashAndResumeRecoversEveryTenant) {
  ServerOptions options = base_options();
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 4;
  constexpr int kTenants = 4;
  constexpr int kEventsPerTenant = 10;  // 2 committed batches + 2 buffered
  double corrections[kTenants] = {};

  {
    Server server(options);
    for (int t = 0; t < kTenants; ++t) {
      Server::TenantHandle h = 0;
      ASSERT_TRUE(server.register_tenant("tenant" + std::to_string(t), make_kb(),
                                         configure_min_time, &h));
      for (int i = 0; i < kEventsPerTenant; ++i) {
        ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.4), Admission::kAccepted);
      }
    }
    ASSERT_TRUE(server.drain(10.0));
    for (int t = 0; t < kTenants; ++t) {
      const auto status = server.tenant_status(static_cast<std::uint64_t>(t));
      EXPECT_EQ(status.applied, static_cast<std::uint64_t>(kEventsPerTenant));
      EXPECT_LT(status.buffered_events, options.group_commit)
          << "a crash may lose at most one uncommitted batch";
      server.with_tenant(static_cast<std::uint64_t>(t), [&](margot::Asrtm& asrtm) {
        corrections[t] = asrtm.correction(0);
      });
    }
    // Destructor without checkpoint_all(): crash-equivalent.
  }

  Server resumed(options);
  for (int t = 0; t < kTenants; ++t) {
    Server::TenantHandle h = 0;
    ASSERT_TRUE(resumed.register_tenant("tenant" + std::to_string(t), make_kb(),
                                        configure_min_time, &h));
    // The journal replays the committed prefix (8 of 10 events); the
    // learned state must match a run that saw exactly that prefix.
    margot::Asrtm reference(make_kb());
    for (int i = 0; i < 8; ++i) reference.send_feedback(0, 0, 1.4);
    resumed.with_tenant(h, [&](margot::Asrtm& asrtm) {
      EXPECT_DOUBLE_EQ(asrtm.correction(0), reference.correction(0)) << "tenant " << t;
      EXPECT_GT(asrtm.correction(0), 1.0);
      EXPECT_LE(asrtm.correction(0), corrections[t]);
    });
  }
}

TEST_F(ServerTest, CheckpointAllMakesShutdownLossless) {
  ServerOptions options = base_options();
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 64;  // large batches: everything would sit buffered
  double correction_before = 0.0;
  {
    Server server(options);
    Server::TenantHandle h = 0;
    ASSERT_TRUE(server.register_tenant("clean", make_kb(), configure_min_time, &h));
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.5), Admission::kAccepted);
    }
    ASSERT_TRUE(server.drain(5.0));
    server.with_tenant(h, [&](margot::Asrtm& asrtm) {
      correction_before = asrtm.correction(0);
    });
    server.checkpoint_all();  // clean shutdown point
  }
  Server resumed(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(resumed.register_tenant("clean", make_kb(), configure_min_time, &h));
  resumed.with_tenant(h, [&](margot::Asrtm& asrtm) {
    EXPECT_DOUBLE_EQ(asrtm.correction(0), correction_before);
  });
}

// ---- programmatic chaos sites (run by the chaos-smoke preset too) ------------------

TEST_F(ServerTest, ServerChaosIngestFloodIsShedNotFatal) {
  ChaosSpec spec;
  spec.ingest_flood = 0.5;
  spec.flood_burst = 8.0;
  spec.seed = 2024;
  ChaosEngine::global().install(spec);

  ServerOptions options = base_options();
  options.shards = 1;
  options.ring_capacity = 32;
  options.policy = BackpressurePolicy::kDropOldest;
  Server server(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("flooded", make_kb(), {}, &h));

  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted);
  }
  ChaosEngine::global().disarm();
  ASSERT_TRUE(server.drain(10.0));
  const Server::Stats stats = server.stats();
  EXPECT_GT(stats.accepted, 200u) << "floods amplify accepted events";
  EXPECT_EQ(stats.drained + stats.shed, stats.accepted);  // conservation holds
}

TEST_F(ServerTest, ServerChaosShardStallRecoversThroughTheWatchdog) {
  ChaosSpec spec;
  spec.shard_stall = 0.02;
  spec.stall_ms = 400.0;  // well past the 150ms deadline below
  spec.seed = 7;
  ChaosEngine::global().install(spec);

  ServerOptions options = base_options();
  options.shards = 1;
  options.shard_stall_deadline_s = 0.15;
  options.watchdog_period_s = 0.03;
  options.restart_backoff_base_s = 0.0;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 1;
  Server server(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("chaotic", make_kb(), configure_min_time, &h));

  std::uint64_t sent = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.stats().shard_restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    if (server.submit_feedback(h, 0, 0, 1.3) == Admission::kAccepted) ++sent;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ChaosEngine::global().disarm();
  ASSERT_GE(server.stats().shard_restarts, 1u) << "chaos stall never tripped";
  ASSERT_TRUE(server.drain(20.0));

  // The server survived: feedback still flows and decisions still serve.
  ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.3), Admission::kAccepted);
  ASSERT_TRUE(server.drain(5.0));
  EXPECT_LT(server.decide(h), make_kb().size());
}

TEST_F(ServerTest, ServerChaosJournalFailLosesAtMostTheFailedBatches) {
  ChaosSpec spec;
  spec.journal_fail = 0.3;
  spec.seed = 11;
  ChaosEngine::global().install(spec);

  ServerOptions options = base_options();
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 4;
  constexpr std::uint64_t kEvents = 40;
  {
    Server server(options);
    Server::TenantHandle h = 0;
    ASSERT_TRUE(server.register_tenant("lossy", make_kb(), configure_min_time, &h));
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.4), Admission::kAccepted);
    }
    ASSERT_TRUE(server.drain(10.0));
    EXPECT_EQ(server.tenant_status(h).applied, kEvents);
  }
  ChaosEngine::global().disarm();

  // Resume: some batches were dropped by the injected I/O failures, but
  // what replays is a clean prefix-of-batches subset — never corruption.
  Server resumed(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(resumed.register_tenant("lossy", make_kb(), configure_min_time, &h));
  resumed.with_tenant(h, [](margot::Asrtm& asrtm) {
    EXPECT_GE(asrtm.correction(0), 1.0);
    (void)asrtm.find_best_operating_point();  // decisions still serve
  });
}

TEST_F(ServerTest, ServerChaosDiskFullDegradesThenRecoversDurability) {
  ServerOptions options = base_options();
  options.shards = 1;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.group_commit = 1;  // every drained event commits immediately
  options.checkpoint_probe_base_s = 0.01;
  options.checkpoint_probe_max_s = 0.05;
  Server server(options);
  Server::TenantHandle h = 0;
  ASSERT_TRUE(server.register_tenant("enospc", make_kb(), configure_min_time, &h));

  ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.2), Admission::kAccepted);
  ASSERT_TRUE(server.drain(5.0));
  ASSERT_GE(server.tenant_status(h).journaled_events, 1u);

  // The disk fills: every checkpoint-layer write fails with ENOSPC.
  ChaosSpec spec;
  spec.disk_full = 1.0;
  spec.seed = 5;
  ChaosEngine::global().install(spec);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.3), Admission::kAccepted);
  }
  ASSERT_TRUE(server.drain(5.0));

  // Degraded durability, but the MAPE-K loop never stopped: feedback
  // keeps applying in memory and decisions keep serving.
  Server::TenantStatus status = server.tenant_status(h);
  EXPECT_TRUE(status.durability_degraded);
  EXPECT_NE(status.disk_last_error.find("enospc"), std::string::npos)
      << status.disk_last_error;
  EXPECT_GE(status.disk_io_errors, 1u);
  EXPECT_EQ(status.applied, 5u);
  EXPECT_LT(server.decide(h), make_kb().size());
  EXPECT_EQ(server.stats().durability_degraded, 1u);

  // The clean-shutdown point must survive a full disk too.
  server.checkpoint_all();
  EXPECT_TRUE(server.tenant_status(h).durability_degraded);

  // The disk clears: traffic after the re-probe backoff restores
  // durability with a full snapshot covering everything applied in
  // memory while degraded.
  ChaosEngine::global().disarm();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.tenant_status(h).durability_degraded &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(server.submit_feedback(h, 0, 0, 1.25), Admission::kAccepted);
    ASSERT_TRUE(server.drain(5.0));
  }
  status = server.tenant_status(h);
  ASSERT_FALSE(status.durability_degraded) << "never recovered: "
                                           << status.disk_last_error;
  EXPECT_GE(status.disk_recoveries, 1u);
  EXPECT_EQ(server.stats().durability_degraded, 0u);

  // Durability is real again: a crash-equivalent restart replays the
  // recovery snapshot + journal to the exact live state (group_commit=1,
  // so nothing sits buffered).
  double correction_live = 0.0;
  server.with_tenant(h, [&](margot::Asrtm& asrtm) {
    correction_live = asrtm.correction(0);
  });
  Server resumed(options);
  Server::TenantHandle r = 0;
  ASSERT_TRUE(resumed.register_tenant("enospc", make_kb(), configure_min_time, &r));
  resumed.with_tenant(r, [&](margot::Asrtm& asrtm) {
    EXPECT_DOUBLE_EQ(asrtm.correction(0), correction_live);
  });
}

}  // namespace
}  // namespace socrates::server
