// Tests for the mARGOt monitoring infrastructure.
#include <gtest/gtest.h>

#include <cmath>

#include "margot/monitor.hpp"
#include "platform/clock.hpp"
#include "platform/rapl.hpp"
#include "support/error.hpp"

namespace socrates::margot {
namespace {

TEST(CircularMonitor, StatsOverPartialWindow) {
  CircularMonitor m(5);
  m.push(1.0);
  m.push(3.0);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_DOUBLE_EQ(m.average(), 2.0);
  EXPECT_DOUBLE_EQ(m.last(), 3.0);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
  EXPECT_NEAR(m.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(CircularMonitor, WindowEvictsOldest) {
  CircularMonitor m(3);
  for (const double v : {1.0, 2.0, 3.0, 10.0}) m.push(v);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.average(), 5.0);  // {2, 3, 10}
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.last(), 10.0);
}

TEST(CircularMonitor, LastIsCorrectAfterManyWraps) {
  CircularMonitor m(4);
  for (int i = 0; i < 23; ++i) m.push(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(m.last(), 22.0);
  EXPECT_EQ(m.count(), 4u);
}

TEST(CircularMonitor, ClearResets) {
  CircularMonitor m(2);
  m.push(1.0);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_THROW(m.last(), ContractViolation);
}

TEST(CircularMonitor, WindowOfOne) {
  CircularMonitor m(1);
  m.push(1.0);
  m.push(7.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.average(), 7.0);
  EXPECT_EQ(m.stddev(), 0.0);
}

TEST(TimeMonitor, MeasuresVirtualRegions) {
  platform::VirtualClock clock;
  TimeMonitor tm(clock, 3);
  tm.start();
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(tm.stop(), 0.25);
  tm.start();
  clock.advance(0.75);
  tm.stop();
  EXPECT_DOUBLE_EQ(tm.stats().average(), 0.5);
}

TEST(TimeMonitor, StartStopProtocolEnforced) {
  platform::VirtualClock clock;
  TimeMonitor tm(clock);
  EXPECT_THROW(tm.stop(), ContractViolation);
  tm.start();
  EXPECT_THROW(tm.start(), ContractViolation);
}

TEST(ThroughputMonitor, UnitsPerSecond) {
  platform::VirtualClock clock;
  ThroughputMonitor tm(clock, 2);
  tm.start();
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(tm.stop(), 2.0);  // 1 unit / 0.5 s
  tm.start();
  clock.advance(2.0);
  EXPECT_DOUBLE_EQ(tm.stop(4.0), 2.0);  // 4 units / 2 s
}

TEST(ThroughputMonitor, ZeroLengthRegionRejected) {
  platform::VirtualClock clock;
  ThroughputMonitor tm(clock);
  tm.start();
  EXPECT_THROW(tm.stop(), ContractViolation);
}

TEST(EnergyMonitor, DeltaInJoules) {
  platform::SimulatedRapl rapl;
  EnergyMonitor em(rapl, 2);
  em.start();
  rapl.accrue(2.0, 50.0);  // 100 J
  EXPECT_DOUBLE_EQ(em.stop(), 100.0);
}

TEST(PowerMonitor, AverageWatts) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  PowerMonitor pm(clock, rapl, 2);
  pm.start();
  clock.advance(2.0);
  rapl.accrue(2.0, 80.0);
  EXPECT_DOUBLE_EQ(pm.stop(), 80.0);
  pm.start();
  clock.advance(1.0);
  rapl.accrue(1.0, 40.0);
  pm.stop();
  EXPECT_DOUBLE_EQ(pm.stats().average(), 60.0);
}

TEST(PowerMonitor, InterleavedRegionsSeeOnlyTheirEnergy) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  PowerMonitor pm(clock, rapl, 4);
  rapl.accrue(5.0, 100.0);  // energy before the region must not count
  pm.start();
  clock.advance(1.0);
  rapl.accrue(1.0, 30.0);
  EXPECT_DOUBLE_EQ(pm.stop(), 30.0);
}

TEST(AllMonitors, StopWithoutStartIsACleanError) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  TimeMonitor tm(clock);
  ThroughputMonitor thm(clock);
  EnergyMonitor em(rapl);
  PowerMonitor pm(clock, rapl);
  // Every monitor reports the misuse as a ContractViolation instead of
  // recording a garbage region from uninitialized start state.
  EXPECT_THROW(tm.stop(), ContractViolation);
  EXPECT_THROW(thm.stop(), ContractViolation);
  EXPECT_THROW(em.stop(), ContractViolation);
  EXPECT_THROW(pm.stop(), ContractViolation);
  // The failed stop() leaves the monitor usable.
  tm.start();
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(tm.stop(), 0.5);
}

TEST(AllMonitors, DoubleStopIsACleanError) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  EnergyMonitor em(rapl);
  em.start();
  rapl.accrue(1.0, 10.0);
  em.stop();
  EXPECT_THROW(em.stop(), ContractViolation);
  PowerMonitor pm(clock, rapl);
  pm.start();
  clock.advance(1.0);
  rapl.accrue(1.0, 10.0);
  pm.stop();
  EXPECT_THROW(pm.stop(), ContractViolation);
}

TEST(AllMonitors, CancelAbandonsTheRegionWithoutRecording) {
  platform::VirtualClock clock;
  platform::SimulatedRapl rapl;
  TimeMonitor tm(clock);
  ThroughputMonitor thm(clock);
  EnergyMonitor em(rapl);
  PowerMonitor pm(clock, rapl);
  // cancel() before start() is the same protocol violation as stop().
  EXPECT_THROW(tm.cancel(), ContractViolation);
  EXPECT_THROW(thm.cancel(), ContractViolation);
  EXPECT_THROW(em.cancel(), ContractViolation);
  EXPECT_THROW(pm.cancel(), ContractViolation);

  tm.start();
  thm.start();
  em.start();
  pm.start();
  clock.advance(3.0);
  rapl.accrue(3.0, 100.0);
  tm.cancel();
  thm.cancel();
  em.cancel();
  pm.cancel();
  EXPECT_FALSE(tm.running());
  EXPECT_TRUE(tm.stats().empty());  // nothing was recorded
  EXPECT_TRUE(em.stats().empty());
  // And the monitors are immediately reusable.
  tm.start();
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(tm.stop(), 0.25);
}

}  // namespace
}  // namespace socrates::margot
