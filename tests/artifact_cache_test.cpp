// Tests for the content-keyed artifact cache and the serialized
// artifact formats it stores: memory/disk tiers, corruption tolerance,
// key invalidation, exact round trips, and cache reuse through the
// Pipeline.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cobayn/cobayn.hpp"
#include "dse/dse.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "socrates/pipeline.hpp"
#include "support/artifact_cache.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

namespace fs = std::filesystem;

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

/// A per-test on-disk cache directory, removed on teardown.
class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("socrates_cache_test." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST(ArtifactCacheMemory, StoreThenLoadHits) {
  ArtifactCache cache;  // memory-only
  EXPECT_FALSE(cache.load(42, "thing").has_value());
  cache.store(42, "thing", "payload");
  const auto hit = cache.load(42, "thing");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload");
  EXPECT_FALSE(cache.load(43, "thing").has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST_F(DiskCacheTest, SurvivesMemoryDropViaDiskTier) {
  ArtifactCache cache(dir_.string());
  cache.store(7, "dse-profile", "the artifact body");
  cache.clear_memory();
  const auto hit = cache.load(7, "dse-profile");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "the artifact body");
  EXPECT_EQ(cache.stats().disk_hits, 1u);

  // A second cache instance on the same directory (a later process)
  // sees the artifact too.
  ArtifactCache other(dir_.string());
  const auto cross = other.load(7, "dse-profile");
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(*cross, "the artifact body");
}

TEST_F(DiskCacheTest, CorruptedDiskFileIsAMissNotAnError) {
  ArtifactCache cache(dir_.string());
  cache.store(9, "cobayn-model", "good payload");
  cache.clear_memory();

  // Scribble over every stored file: checksum validation must turn the
  // damage into a plain miss.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "vandalized";
  }
  EXPECT_FALSE(cache.load(9, "cobayn-model").has_value());

  // Truncated-to-empty files as well.
  cache.store(9, "cobayn-model", "good payload");
  cache.clear_memory();
  for (const auto& entry : fs::directory_iterator(dir_))
    std::ofstream(entry.path(), std::ios::trunc);
  EXPECT_FALSE(cache.load(9, "cobayn-model").has_value());
}

TEST_F(DiskCacheTest, TruncatedPayloadIsAMissAndAStoreRepairsIt) {
  // Simulate a writer that died mid-payload *after* the header went out
  // (the failure mode the tmp+rename publish protects against): the
  // header promises more bytes than the file holds.
  ArtifactCache cache(dir_.string());
  cache.store(11, "dse-profile", "twelve bytes!");
  cache.clear_memory();

  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string header;
    std::getline(in, header);
    in.close();
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << header << "\ntwelve";  // half the promised payload
  }
  EXPECT_FALSE(cache.load(11, "dse-profile").has_value());

  // Re-storing replaces the damaged file and the next load hits disk.
  cache.store(11, "dse-profile", "twelve bytes!");
  cache.clear_memory();
  const auto hit = cache.load(11, "dse-profile");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "twelve bytes!");
}

TEST_F(DiskCacheTest, LeftoverTempFilesAreHarmless) {
  // A crashed writer leaves its per-pid temp file behind; loads must
  // ignore it and later stores must still publish the real name.
  ArtifactCache cache(dir_.string());
  cache.store(13, "cobayn-model", "real");
  std::ofstream(dir_ / "cobayn-model-d.artifact.tmp.99999") << "garbage";

  cache.clear_memory();
  const auto hit = cache.load(13, "cobayn-model");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "real");
}

TEST(ArtifactCacheDegraded, UnwritableDiskDirFallsBackToMemory) {
  // Point the disk tier at a path whose parent is a regular file:
  // create_directories must fail (even for root, unlike a chmod), and
  // the cache must degrade to the memory tier with a warning, not crash.
  const fs::path blocker = fs::temp_directory_path() /
                           ("socrates_cache_blocker." + std::to_string(::getpid()));
  std::ofstream(blocker) << "not a directory";
  ArtifactCache cache((blocker / "sub").string());
  cache.store(17, "dse-profile", "memory only");
  const auto hit = cache.load(17, "dse-profile");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "memory only");

  cache.clear_memory();
  EXPECT_FALSE(cache.load(17, "dse-profile").has_value());  // disk never happened
  fs::remove(blocker);
}

// ---- Artifact keys --------------------------------------------------------------

TEST(ArtifactKeys, CobaynKeyTracksEveryInput) {
  const cobayn::TrainOptions train;
  const auto base = cobayn_artifact_key(model(), 48, 2018, train);
  EXPECT_EQ(cobayn_artifact_key(model(), 48, 2018, train), base);

  EXPECT_NE(cobayn_artifact_key(model(), 32, 2018, train), base);
  EXPECT_NE(cobayn_artifact_key(model(), 48, 2019, train), base);

  cobayn::TrainOptions other = train;
  other.feature_bins = train.feature_bins + 1;
  EXPECT_NE(cobayn_artifact_key(model(), 48, 2018, other), base);

  // Bumping the stage version invalidates previously stored artifacts.
  EXPECT_NE(cobayn_artifact_key(model(), 48, 2018, train, kCobaynStageVersion + 1),
            base);
}

TEST(ArtifactKeys, DseKeyTracksEveryInput) {
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto& bench = kernels::find_benchmark("2mm");
  const std::string source = kernels::benchmark_source("2mm");

  const auto base = dse_artifact_key(model(), source, bench.model, space, 5, 2018, 1.0);
  EXPECT_EQ(dse_artifact_key(model(), source, bench.model, space, 5, 2018, 1.0), base);

  EXPECT_NE(dse_artifact_key(model(), source + "\n", bench.model, space, 5, 2018, 1.0),
            base);
  EXPECT_NE(dse_artifact_key(model(), source, bench.model, space, 4, 2018, 1.0), base);
  EXPECT_NE(dse_artifact_key(model(), source, bench.model, space, 5, 2019, 1.0), base);
  EXPECT_NE(dse_artifact_key(model(), source, bench.model, space, 5, 2018, 1.5), base);
  EXPECT_NE(dse_artifact_key(model(), source, bench.model, space, 5, 2018, 1.0,
                             kDseStageVersion + 1),
            base);

  auto narrower = space;
  narrower.thread_counts.pop_back();
  EXPECT_NE(dse_artifact_key(model(), source, bench.model, narrower, 5, 2018, 1.0),
            base);
}

// ---- Serialized artifact formats ------------------------------------------------

TEST(ArtifactFormats, ProfileRoundTripsExactly) {
  const auto space = dse::DesignSpace::paper_space(model().topology());
  const auto points = dse::full_factorial_dse(
      model(), kernels::find_benchmark("mvt").model, space, 2, 11);

  std::ostringstream first;
  dse::save_profile(first, points);
  std::istringstream in(first.str());
  const auto reloaded = dse::load_profile(in);
  ASSERT_EQ(reloaded.size(), points.size());
  std::ostringstream second;
  dse::save_profile(second, reloaded);
  EXPECT_EQ(second.str(), first.str());  // hexfloat: exact round trip

  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(reloaded[i].config_index, points[i].config_index);
    EXPECT_EQ(reloaded[i].config_name, points[i].config_name);
    EXPECT_EQ(reloaded[i].configuration.threads, points[i].configuration.threads);
    EXPECT_EQ(reloaded[i].exec_time_mean_s, points[i].exec_time_mean_s);
    EXPECT_EQ(reloaded[i].power_mean_w, points[i].power_mean_w);
  }
}

TEST(ArtifactFormats, MalformedProfileThrows) {
  for (const char* bad :
       {"", "profile v2 1", "profile v1 notanumber", "profile v1 1\n0 cfg 9 0 1 0"}) {
    std::istringstream in(bad);
    EXPECT_THROW(dse::load_profile(in), ContractViolation) << bad;
  }
}

TEST(ArtifactFormats, CobaynModelRoundTripsExactly) {
  const auto corpus = cobayn::make_corpus(20, 3);
  const auto trained = cobayn::CobaynModel::train(corpus, model());

  std::ostringstream first;
  trained.save(first);
  std::istringstream in(first.str());
  const auto reloaded = cobayn::CobaynModel::load(in);
  EXPECT_EQ(reloaded.training_rows(), trained.training_rows());
  std::ostringstream second;
  reloaded.save(second);
  EXPECT_EQ(second.str(), first.str());

  // The reloaded model predicts exactly what the trained one does.
  const auto fv =
      cobayn::kernel_features_of_source(kernels::benchmark_source("atax"));
  const auto a = trained.predict(fv, 4);
  const auto b = reloaded.predict(fv, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config.flag_bits(), b[i].config.flag_bits());
    EXPECT_EQ(a[i].probability, b[i].probability);
  }
}

TEST(ArtifactFormats, MalformedCobaynModelThrows) {
  for (const char* bad : {"", "not a model", "cobayn v2 0 0", "cobayn v1 10 5"}) {
    std::istringstream in(bad);
    EXPECT_THROW(cobayn::CobaynModel::load(in), ContractViolation) << bad;
  }
}

// ---- Cache reuse through the Pipeline -------------------------------------------

ToolchainOptions small_options() {
  ToolchainOptions opts;
  opts.corpus_size = 16;
  opts.dse_repetitions = 2;
  opts.jobs = 2;
  return opts;
}

TEST(PipelineCache, SecondBuildHitsBothExpensiveStages) {
  ArtifactCache cache;
  Pipeline pipeline(model(), small_options(), &cache);

  const auto cold = pipeline.build("gemm");
  const auto* cold_dse = pipeline.last_report().stage("Dse");
  ASSERT_NE(cold_dse, nullptr);
  EXPECT_FALSE(cold_dse->cache_hit);

  const auto warm = pipeline.build("gemm");
  const auto* warm_dse = pipeline.last_report().stage("Dse");
  const auto* warm_cobayn = pipeline.last_report().stage("CobaynPredict");
  ASSERT_NE(warm_dse, nullptr);
  ASSERT_NE(warm_cobayn, nullptr);
  EXPECT_TRUE(warm_dse->cache_hit);
  EXPECT_TRUE(warm_cobayn->cache_hit);

  // The cached profile is the recomputed profile, byte for byte.
  std::ostringstream a, b;
  dse::save_profile(a, cold.profile);
  dse::save_profile(b, warm.profile);
  EXPECT_EQ(b.str(), a.str());
}

TEST(PipelineCache, FreshPipelineReusesASharedCache) {
  ArtifactCache cache;
  Pipeline first(model(), small_options(), &cache);
  const auto cold = first.build("bicg");

  // A second pipeline (another driver in the same process) on the same
  // cache: both the model and the profile come from artifacts.
  Pipeline second(model(), small_options(), &cache);
  const auto warm = second.build("bicg");
  EXPECT_TRUE(second.last_report().stage("Dse")->cache_hit);
  EXPECT_TRUE(second.last_report().stage("CobaynPredict")->cache_hit);

  std::ostringstream a, b;
  dse::save_profile(a, cold.profile);
  dse::save_profile(b, warm.profile);
  EXPECT_EQ(b.str(), a.str());
}

TEST(PipelineCache, DifferentWorkScaleOrSeedMissesTheCache) {
  ArtifactCache cache;
  Pipeline pipeline(model(), small_options(), &cache);
  pipeline.build("syrk");

  // Same benchmark at another dataset scale: the DSE key changes.
  pipeline.build("syrk", 1.5);
  EXPECT_FALSE(pipeline.last_report().stage("Dse")->cache_hit);

  // Another pipeline with a different master seed: both keys change.
  auto opts = small_options();
  opts.seed = 4242;
  Pipeline reseeded(model(), opts, &cache);
  reseeded.build("syrk");
  EXPECT_FALSE(reseeded.last_report().stage("Dse")->cache_hit);
  EXPECT_FALSE(reseeded.last_report().stage("CobaynPredict")->cache_hit);
}

TEST(PipelineCache, UnusableStoredArtifactTriggersRecomputeNotCrash) {
  ArtifactCache cache;
  const auto opts = small_options();

  // Plant garbage under the exact keys the pipeline will compute.  The
  // payloads parse as neither a model nor a profile; the stages must
  // fall back to recomputation.
  cobayn::TrainOptions train;
  cache.store(cobayn_artifact_key(model(), opts.corpus_size, opts.seed, train),
              "cobayn-model", "cobayn v1 oops");

  Pipeline pipeline(model(), opts, &cache);
  const auto binary = pipeline.build("3mm");
  EXPECT_FALSE(pipeline.last_report().stage("CobaynPredict")->cache_hit);
  EXPECT_EQ(binary.profile.size(), binary.space.size());
  EXPECT_TRUE(pipeline.cobayn_ready());
}

}  // namespace
}  // namespace socrates
