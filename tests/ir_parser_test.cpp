// Unit tests for the C-subset parser: expressions, statements,
// declarations, functions and directives.
#include <gtest/gtest.h>

#include "ir/loc_counter.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"

namespace socrates::ir {
namespace {

std::string expr_rt(const char* src) { return print_expr(*parse_expression(src)); }

TEST(ParserExpr, PrecedenceMultiplicationBindsTighter) {
  const auto e = parse_expression("a + b * c");
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*e).op, "+");
}

TEST(ParserExpr, LeftAssociativity) {
  // (a - b) - c
  const auto e = parse_expression("a - b - c");
  const auto& top = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(top.op, "-");
  EXPECT_EQ(top.lhs->kind, ExprKind::kBinary);
  EXPECT_EQ(top.rhs->kind, ExprKind::kIdent);
}

TEST(ParserExpr, ParensOverridePrecedence) {
  const auto e = parse_expression("(a + b) * c");
  EXPECT_EQ(static_cast<const BinaryExpr&>(*e).op, "*");
}

TEST(ParserExpr, AssignmentIsRightAssociative) {
  const auto e = parse_expression("a = b = c");
  const auto& top = static_cast<const AssignExpr&>(*e);
  EXPECT_EQ(top.rhs->kind, ExprKind::kAssign);
}

TEST(ParserExpr, CompoundAssignment) {
  const auto e = parse_expression("x += y * 2");
  EXPECT_EQ(static_cast<const AssignExpr&>(*e).op, "+=");
}

TEST(ParserExpr, Conditional) {
  const auto e = parse_expression("a > b ? a : b");
  EXPECT_EQ(e->kind, ExprKind::kConditional);
}

TEST(ParserExpr, CallWithArgs) {
  const auto e = parse_expression("f(x, y + 1, g())");
  const auto& call = static_cast<const CallExpr&>(*e);
  EXPECT_EQ(call.callee, "f");
  ASSERT_EQ(call.args.size(), 3u);
  EXPECT_EQ(call.args[2]->kind, ExprKind::kCall);
}

TEST(ParserExpr, MultiDimIndexing) {
  const auto e = parse_expression("A[i][j + 1]");
  ASSERT_EQ(e->kind, ExprKind::kIndex);
  EXPECT_EQ(static_cast<const IndexExpr&>(*e).base->kind, ExprKind::kIndex);
}

TEST(ParserExpr, CastBindsToUnary) {
  // (double)(i % n) / n  parses as ((double)(i % n)) / n
  const auto e = parse_expression("(double)(i % n) / n");
  const auto& top = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(top.op, "/");
  EXPECT_EQ(top.lhs->kind, ExprKind::kCast);
}

TEST(ParserExpr, SizeofTypeAndExpr) {
  EXPECT_EQ(expr_rt("sizeof(double)"), "sizeof(double)");
  EXPECT_EQ(expr_rt("sizeof(x)"), "sizeof(x)");
}

TEST(ParserExpr, AddressOfAndDeref) {
  EXPECT_EQ(expr_rt("&x"), "&x");
  EXPECT_EQ(expr_rt("*p + 1"), "*p + 1");
}

TEST(ParserExpr, PostfixIncrement) {
  const auto e = parse_expression("i++");
  const auto& u = static_cast<const UnaryExpr&>(*e);
  EXPECT_FALSE(u.is_prefix);
}

TEST(ParserExpr, MemberAccess) {
  EXPECT_EQ(expr_rt("s.field"), "s.field");
  EXPECT_EQ(expr_rt("p->field"), "p->field");
}

TEST(ParserExpr, TrailingGarbageThrows) {
  EXPECT_THROW(parse_expression("a + b c"), ParseError);
}

TEST(ParserExpr, CallOfNonIdentifierThrows) {
  EXPECT_THROW(parse_expression("(a + b)(x)"), ParseError);
}

// ---- statements -------------------------------------------------------------

TEST(ParserStmt, DeclarationWithInit) {
  const auto s = parse_statement("int i = 0;");
  const auto& d = static_cast<const DeclStmt&>(*s);
  ASSERT_EQ(d.decls.size(), 1u);
  EXPECT_EQ(d.decls[0].name, "i");
  ASSERT_NE(d.decls[0].init, nullptr);
}

TEST(ParserStmt, MultiDeclaratorStatement) {
  const auto s = parse_statement("int i, j, k;");
  EXPECT_EQ(static_cast<const DeclStmt&>(*s).decls.size(), 3u);
}

TEST(ParserStmt, ArrayDeclaration) {
  const auto s = parse_statement("double A[10][n + 1];");
  const auto& d = static_cast<const DeclStmt&>(*s).decls[0];
  ASSERT_EQ(d.array_dims.size(), 2u);
  EXPECT_NE(d.array_dims[1], nullptr);
}

TEST(ParserStmt, ForWithDeclInit) {
  const auto s = parse_statement("for (int i = 0; i < n; i++) x += i;");
  const auto& f = static_cast<const ForStmt&>(*s);
  ASSERT_NE(f.init, nullptr);
  EXPECT_EQ(f.init->kind, StmtKind::kDecl);
  ASSERT_NE(f.cond, nullptr);
  ASSERT_NE(f.inc, nullptr);
}

TEST(ParserStmt, ForWithEmptyClauses) {
  const auto s = parse_statement("for (;;) break;");
  const auto& f = static_cast<const ForStmt&>(*s);
  EXPECT_EQ(f.init, nullptr);
  EXPECT_EQ(f.cond, nullptr);
  EXPECT_EQ(f.inc, nullptr);
}

TEST(ParserStmt, IfElseChain) {
  const auto s = parse_statement("if (a) x = 1; else if (b) x = 2; else x = 3;");
  const auto& top = static_cast<const IfStmt&>(*s);
  ASSERT_NE(top.else_branch, nullptr);
  EXPECT_EQ(top.else_branch->kind, StmtKind::kIf);
}

TEST(ParserStmt, SwitchWithCasesAndDefault) {
  const auto s = parse_statement(
      "switch (x % 3) {\ncase 0:\n  a = 1;\n  break;\ncase 1 + 1:\n  a = 2;\n"
      "  break;\ndefault:\n  a = 3;\n}");
  ASSERT_EQ(s->kind, StmtKind::kSwitch);
  const auto& sw = static_cast<const SwitchStmt&>(*s);
  const auto& body = static_cast<const CompoundStmt&>(*sw.body);
  std::size_t labels = 0;
  std::size_t defaults = 0;
  for (const auto& stmt : body.stmts) {
    if (stmt->kind != StmtKind::kCaseLabel) continue;
    ++labels;
    if (static_cast<const CaseLabelStmt&>(*stmt).value == nullptr) ++defaults;
  }
  EXPECT_EQ(labels, 3u);
  EXPECT_EQ(defaults, 1u);
}

TEST(ParserStmt, SwitchRequiresCompoundBody) {
  EXPECT_THROW(parse_statement("switch (x) a = 1;"), ParseError);
}

TEST(ParserStmt, SwitchRoundTrips) {
  const auto s = parse_statement(
      "switch (op) {\ncase 1:\n  y += 1;\n  break;\ndefault:\n  y = 0;\n}");
  const std::string once = print_stmt(*s);
  EXPECT_EQ(once, print_stmt(*parse_statement(once)));
  EXPECT_EQ(once, print_stmt(*s->clone()));
  EXPECT_EQ(logical_loc(*s), 6u);  // switch + 2 labels + 3 statements
}

TEST(ParserStmt, WhileAndDoWhile) {
  EXPECT_EQ(parse_statement("while (x) x--;")->kind, StmtKind::kWhile);
  EXPECT_EQ(parse_statement("do x--; while (x);")->kind, StmtKind::kDoWhile);
}

TEST(ParserStmt, PragmaInsideFunctionBody) {
  const auto s = parse_statement(
      "{\n#pragma omp parallel for\nfor (i = 0; i < n; i++) x += i; }");
  const auto& block = static_cast<const CompoundStmt&>(*s);
  ASSERT_EQ(block.stmts.size(), 2u);
  EXPECT_EQ(block.stmts[0]->kind, StmtKind::kPragma);
}

TEST(ParserStmt, ReturnVariants) {
  EXPECT_EQ(parse_statement("return;")->kind, StmtKind::kReturn);
  const auto s = parse_statement("return a + b;");
  EXPECT_NE(static_cast<const ReturnStmt&>(*s).expr, nullptr);
}

// ---- top level -------------------------------------------------------------------

TEST(ParserTop, FunctionWithParams) {
  const auto tu = parse("void f(int n, double *p, double A[10][20]) { }");
  ASSERT_EQ(tu.items.size(), 1u);
  const auto& fn = static_cast<const FunctionDecl&>(*tu.items[0]);
  EXPECT_EQ(fn.name, "f");
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_EQ(fn.params[1].pointer_depth, 1);
  EXPECT_EQ(fn.params[2].array_dims.size(), 2u);
}

TEST(ParserTop, VoidParameterList) {
  const auto tu = parse("int main(void) { return 0; }");
  EXPECT_TRUE(static_cast<const FunctionDecl&>(*tu.items[0]).params.empty());
}

TEST(ParserTop, Prototype) {
  const auto tu = parse("double f(int x);");
  const auto& fn = static_cast<const FunctionDecl&>(*tu.items[0]);
  EXPECT_EQ(fn.body, nullptr);
}

TEST(ParserTop, StaticFunction) {
  const auto tu = parse("static int helper(void) { return 1; }");
  EXPECT_TRUE(static_cast<const FunctionDecl&>(*tu.items[0]).is_static);
}

TEST(ParserTop, GlobalArrays) {
  const auto tu = parse("#define N 10\ndouble A[N][N];\nint x = 3;");
  ASSERT_EQ(tu.items.size(), 3u);
  EXPECT_EQ(tu.items[0]->kind, TopLevelKind::kDefine);
  EXPECT_EQ(tu.items[1]->kind, TopLevelKind::kGlobalVar);
}

TEST(ParserTop, IncludeAndPragma) {
  const auto tu = parse("#include <stdio.h>\n#pragma GCC optimize(\"O2\")\n");
  EXPECT_EQ(tu.items[0]->kind, TopLevelKind::kInclude);
  EXPECT_EQ(tu.items[1]->kind, TopLevelKind::kPragma);
  EXPECT_TRUE(static_cast<const TopLevelPragma&>(*tu.items[1]).pragma.is_gcc_optimize());
}

TEST(ParserTop, TypedefPassthrough) {
  const auto tu = parse("typedef struct { int a; } pair_t;\nint main(void) { return 0; }");
  EXPECT_EQ(tu.items[0]->kind, TopLevelKind::kRaw);
}

TEST(ParserTop, FindFunctionAndFunctions) {
  auto tu = parse("void a(void) { }\nvoid b(void);\nvoid c(void) { }");
  EXPECT_NE(tu.find_function("a"), nullptr);
  EXPECT_NE(tu.find_function("b"), nullptr);  // prototype is findable
  EXPECT_EQ(tu.find_function("zzz"), nullptr);
  EXPECT_EQ(tu.functions().size(), 2u);  // definitions only
}

TEST(ParserTop, CloneIsDeepAndEqualText) {
  const auto tu = parse("int g;\nvoid f(int n) { for (int i = 0; i < n; i++) g += i; }");
  const auto copy = tu.clone();
  EXPECT_EQ(print(tu), print(copy));
}

TEST(ParserTop, ErrorCarriesLocation) {
  try {
    parse("void f( { }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_GT(e.column(), 1);
  }
}

}  // namespace
}  // namespace socrates::ir
