// Property-based fuzzing of the printer/parser pair: random ASTs are
// generated, printed, reparsed and reprinted — the two prints must be
// identical (print o parse is a fixpoint on printed output).  This
// catches precedence/parenthesisation bugs that hand-written cases
// miss.
#include <gtest/gtest.h>

#include <string>

#include "ir/ast.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/rng.hpp"

namespace socrates::ir {
namespace {

class AstFuzzer {
 public:
  explicit AstFuzzer(std::uint64_t seed) : rng_(seed) {}

  ExprPtr expr(int depth = 0) {
    // Bias towards leaves as depth grows.
    const auto roll = rng_.uniform_int(0, depth >= 4 ? 3 : 11);
    switch (roll) {
      case 0: return std::make_unique<IntLit>(std::to_string(rng_.uniform_int(0, 999)));
      case 1: return std::make_unique<FloatLit>(float_spelling());
      case 2:
      case 3: return std::make_unique<Ident>(ident());
      case 4: {
        const char* ops[] = {"+", "-", "*", "/", "%", "<<", ">>", "<", ">",
                             "<=", ">=", "==", "!=", "&", "^", "|", "&&", "||"};
        const auto op = ops[rng_.uniform_int(0, 17)];
        return std::make_unique<BinaryExpr>(op, expr(depth + 1), expr(depth + 1));
      }
      case 5: {
        const char* ops[] = {"-", "!", "~", "+"};
        return std::make_unique<UnaryExpr>(ops[rng_.uniform_int(0, 3)], expr(depth + 1),
                                           true);
      }
      case 6:
        return std::make_unique<ConditionalExpr>(expr(depth + 1), expr(depth + 1),
                                                 expr(depth + 1));
      case 7: {
        std::vector<ExprPtr> args;
        const auto n = rng_.uniform_int(0, 3);
        for (int i = 0; i < n; ++i) args.push_back(expr(depth + 1));
        return std::make_unique<CallExpr>(ident(), std::move(args));
      }
      case 8:
        return std::make_unique<IndexExpr>(std::make_unique<Ident>(ident()),
                                           expr(depth + 1));
      case 9: {
        const char* ops[] = {"=", "+=", "-=", "*=", "/="};
        return std::make_unique<AssignExpr>(ops[rng_.uniform_int(0, 4)],
                                            std::make_unique<Ident>(ident()),
                                            expr(depth + 1));
      }
      case 10: {
        const char* types[] = {"double", "float", "int", "unsigned int"};
        return std::make_unique<CastExpr>(types[rng_.uniform_int(0, 3)],
                                          expr(depth + 1));
      }
      default: {
        const char* ops[] = {"++", "--"};
        return std::make_unique<UnaryExpr>(ops[rng_.uniform_int(0, 1)],
                                           std::make_unique<Ident>(ident()),
                                           /*prefix=*/rng_.uniform() < 0.5);
      }
    }
  }

  StmtPtr stmt(int depth = 0) {
    const auto roll = rng_.uniform_int(0, depth >= 3 ? 1 : 7);
    switch (roll) {
      case 0:
      case 1:
        return std::make_unique<ExprStmt>(expr());
      case 2: {
        auto block = std::make_unique<CompoundStmt>();
        const auto n = rng_.uniform_int(0, 3);
        for (int i = 0; i < n; ++i) block->stmts.push_back(stmt(depth + 1));
        return block;
      }
      case 3:
        return std::make_unique<IfStmt>(expr(), stmt(depth + 1),
                                        rng_.uniform() < 0.5 ? stmt(depth + 1) : nullptr);
      case 4: {
        auto loop = std::make_unique<ForStmt>();
        if (rng_.uniform() < 0.8) loop->init = std::make_unique<ExprStmt>(expr());
        if (rng_.uniform() < 0.8) loop->cond = expr();
        if (rng_.uniform() < 0.8) loop->inc = expr();
        loop->body = stmt(depth + 1);
        return loop;
      }
      case 5:
        return std::make_unique<WhileStmt>(expr(), stmt(depth + 1));
      case 6: {
        std::vector<VarDecl> decls;
        VarDecl d;
        d.type_text = "double";
        d.name = ident();
        if (rng_.uniform() < 0.5) d.init = expr();
        decls.push_back(std::move(d));
        return std::make_unique<DeclStmt>(std::move(decls));
      }
      default:
        return std::make_unique<ReturnStmt>(rng_.uniform() < 0.7 ? expr() : nullptr);
    }
  }

 private:
  std::string ident() {
    static const char* kNames[] = {"a", "b", "c", "n", "x", "acc", "tmp", "A", "B"};
    return kNames[rng_.uniform_int(0, 8)];
  }
  std::string float_spelling() {
    return std::to_string(rng_.uniform_int(0, 99)) + "." +
           std::to_string(rng_.uniform_int(0, 9));
  }

  Rng rng_;
};

class ExprFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprFuzz, PrintParsePrintFixpoint) {
  AstFuzzer fuzz(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto e = fuzz.expr();
    const std::string once = print_expr(*e);
    std::string twice;
    ASSERT_NO_THROW(twice = print_expr(*parse_expression(once))) << once;
    EXPECT_EQ(once, twice);
  }
}

TEST_P(ExprFuzz, CloneEqualsOriginal) {
  AstFuzzer fuzz(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    const auto e = fuzz.expr();
    EXPECT_EQ(print_expr(*e), print_expr(*e->clone()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz, ::testing::Values(1, 2, 3, 4, 5));

class StmtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StmtFuzz, PrintParsePrintFixpoint) {
  AstFuzzer fuzz(GetParam() * 77);
  for (int i = 0; i < 100; ++i) {
    const auto s = fuzz.stmt();
    const std::string once = print_stmt(*s);
    std::string twice;
    ASSERT_NO_THROW(twice = print_stmt(*parse_statement(once))) << once;
    EXPECT_EQ(once, twice);
  }
}

TEST_P(StmtFuzz, CloneEqualsOriginal) {
  AstFuzzer fuzz(GetParam() * 77 + 13);
  for (int i = 0; i < 100; ++i) {
    const auto s = fuzz.stmt();
    EXPECT_EQ(print_stmt(*s), print_stmt(*s->clone()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StmtFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace socrates::ir
