// Tests for the external-load disturbance model.
#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "platform/disturbance.hpp"
#include "platform/executor.hpp"
#include "support/error.hpp"

namespace socrates::platform {
namespace {

Measurement clean() {
  Measurement m;
  m.exec_time_s = 1.0;
  m.avg_power_w = 100.0;
  m.energy_j = 100.0;
  return m;
}

KernelModelParams mem_kernel() {
  KernelModelParams k;
  k.mem_intensity = 0.8;
  k.parallel_fraction = 0.95;
  return k;
}

KernelModelParams compute_kernel() {
  KernelModelParams k;
  k.mem_intensity = 0.1;
  k.parallel_fraction = 0.95;
  return k;
}

TEST(Disturbance, InactiveOutsideWindow) {
  DisturbanceSchedule sched;
  sched.add({10.0, 20.0, 0.5, 0.0, 15.0});
  const auto before = sched.apply(clean(), mem_kernel(), 5.0);
  EXPECT_DOUBLE_EQ(before.exec_time_s, 1.0);
  EXPECT_DOUBLE_EQ(before.avg_power_w, 100.0);
  const auto after = sched.apply(clean(), mem_kernel(), 20.0);  // end is exclusive
  EXPECT_DOUBLE_EQ(after.exec_time_s, 1.0);
}

TEST(Disturbance, BandwidthStealHurtsMemoryBoundMore) {
  DisturbanceSchedule sched;
  sched.add({0.0, 100.0, 0.5, 0.0, 0.0});
  const auto mem = sched.apply(clean(), mem_kernel(), 1.0);
  const auto comp = sched.apply(clean(), compute_kernel(), 1.0);
  EXPECT_GT(mem.exec_time_s, comp.exec_time_s);
  EXPECT_GT(mem.exec_time_s, 1.0);
}

TEST(Disturbance, ComputeStealHurtsComputeBoundMore) {
  DisturbanceSchedule sched;
  sched.add({0.0, 100.0, 0.0, 0.5, 0.0});
  const auto mem = sched.apply(clean(), mem_kernel(), 1.0);
  const auto comp = sched.apply(clean(), compute_kernel(), 1.0);
  EXPECT_GT(comp.exec_time_s, mem.exec_time_s);
}

TEST(Disturbance, PowerOverheadAddsAndEnergyIsConsistent) {
  DisturbanceSchedule sched;
  sched.add({0.0, 10.0, 0.0, 0.0, 25.0});
  const auto m = sched.apply(clean(), mem_kernel(), 1.0);
  EXPECT_DOUBLE_EQ(m.avg_power_w, 125.0);
  EXPECT_NEAR(m.energy_j, m.exec_time_s * m.avg_power_w, 1e-12);
}

TEST(Disturbance, OverlappingEpisodesCompose) {
  DisturbanceSchedule sched;
  sched.add({0.0, 10.0, 0.3, 0.0, 10.0});
  sched.add({5.0, 15.0, 0.3, 0.0, 10.0});
  const auto one = sched.apply(clean(), mem_kernel(), 2.0);
  const auto both = sched.apply(clean(), mem_kernel(), 7.0);
  EXPECT_GT(both.exec_time_s, one.exec_time_s);
  EXPECT_DOUBLE_EQ(both.avg_power_w, 120.0);
}

TEST(Disturbance, RejectsMalformedEpisodes) {
  DisturbanceSchedule sched;
  EXPECT_THROW(sched.add({5.0, 5.0, 0.1, 0.0, 0.0}), ContractViolation);
  EXPECT_THROW(sched.add({0.0, 1.0, 1.0, 0.0, 0.0}), ContractViolation);
  EXPECT_THROW(sched.add({0.0, 1.0, 0.0, 0.0, -1.0}), ContractViolation);
}

TEST(Disturbance, ZeroAndNegativeLengthEpisodesRejected) {
  DisturbanceSchedule sched;
  EXPECT_THROW(sched.add({10.0, 10.0, 0.1, 0.0, 0.0}), ContractViolation);
  EXPECT_THROW(sched.add({10.0, 9.0, 0.1, 0.0, 0.0}), ContractViolation);
  EXPECT_TRUE(sched.empty());  // nothing was half-added
}

TEST(Disturbance, StartInclusiveEndExclusive) {
  DisturbanceSchedule sched;
  sched.add({10.0, 20.0, 0.5, 0.0, 25.0});
  // The episode is a half-open interval [start_s, end_s).
  EXPECT_GT(sched.apply(clean(), mem_kernel(), 10.0).exec_time_s, 1.0);
  EXPECT_GT(sched.apply(clean(), mem_kernel(), 20.0 - 1e-9).exec_time_s, 1.0);
  EXPECT_DOUBLE_EQ(sched.apply(clean(), mem_kernel(), 20.0).exec_time_s, 1.0);
  EXPECT_DOUBLE_EQ(sched.apply(clean(), mem_kernel(), 20.0).avg_power_w, 100.0);
}

TEST(Disturbance, OverlapComposesMultiplicativelyForSlowdown) {
  DisturbanceSchedule one;
  one.add({0.0, 10.0, 0.4, 0.0, 15.0});
  DisturbanceSchedule two;
  two.add({0.0, 10.0, 0.4, 0.0, 15.0});
  two.add({0.0, 10.0, 0.4, 0.0, 15.0});

  const double single = one.apply(clean(), mem_kernel(), 1.0).exec_time_s;
  const auto both = two.apply(clean(), mem_kernel(), 1.0);
  // Slowdowns multiply (each steal stretches what the other left);
  // power overheads add.
  EXPECT_NEAR(both.exec_time_s, single * single, 1e-12);
  EXPECT_DOUBLE_EQ(both.avg_power_w, 130.0);
  EXPECT_NEAR(both.energy_j, both.exec_time_s * both.avg_power_w, 1e-12);
}

TEST(Disturbance, ExecutorAppliesScheduleAtSimulatedTime) {
  const auto model = PerformanceModel::paper_platform();
  KernelExecutor exec(model, kernels::find_benchmark("gemver").model, 1.0, 3);
  const Configuration c{FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose};
  const double clean_time = exec.run(c).exec_time_s;

  DisturbanceSchedule sched;
  sched.add({exec.clock().now_s(), exec.clock().now_s() + 1000.0, 0.6, 0.0, 20.0});
  exec.set_disturbances(std::move(sched));
  const auto disturbed = exec.run(c);
  EXPECT_GT(disturbed.exec_time_s, clean_time * 1.3);
}

}  // namespace
}  // namespace socrates::platform
