// Tests for the sampling DSE strategies (explorer.hpp's historical
// free-function interface).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dse/explorer.hpp"
#include "kernels/registry.hpp"
#include "margot/asrtm.hpp"
#include "margot/context.hpp"
#include "support/error.hpp"

namespace socrates::dse {
namespace {

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

const DesignSpace& space() {
  static const DesignSpace kSpace = DesignSpace::paper_space(model().topology());
  return kSpace;
}

TEST(RandomSubsetDse, BudgetIsRespected) {
  const auto points = random_subset_dse(model(), kernels::find_benchmark("2mm").model,
                                        space(), 0.25, 2, 9);
  EXPECT_EQ(points.size(), 128u);  // ceil(0.25 * 512)
}

TEST(RandomSubsetDse, PointsAreDistinct) {
  const auto points = random_subset_dse(model(), kernels::find_benchmark("atax").model,
                                        space(), 0.1, 2, 11);
  std::set<std::tuple<std::size_t, std::size_t, int>> seen;
  for (const auto& p : points)
    seen.insert({p.config_index, p.configuration.threads,
                 p.configuration.binding == platform::BindingPolicy::kClose ? 0 : 1});
  EXPECT_EQ(seen.size(), points.size());
}

TEST(RandomSubsetDse, FullFractionCoversEverything) {
  const auto points = random_subset_dse(model(), kernels::find_benchmark("mvt").model,
                                        space(), 1.0, 1, 5);
  EXPECT_EQ(points.size(), space().size());
}

TEST(RandomSubsetDse, DeterministicPerSeedDifferentAcrossSeeds) {
  const auto& k = kernels::find_benchmark("syrk").model;
  const auto a = random_subset_dse(model(), k, space(), 0.2, 1, 42);
  const auto b = random_subset_dse(model(), k, space(), 0.2, 1, 42);
  const auto c = random_subset_dse(model(), k, space(), 0.2, 1, 43);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_ab = true;
  bool all_equal_ac = a.size() == c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal_ab &= a[i].configuration.threads == b[i].configuration.threads &&
                    a[i].config_index == b[i].config_index;
    if (all_equal_ac)
      all_equal_ac = a[i].configuration.threads == c[i].configuration.threads &&
                     a[i].config_index == c[i].config_index;
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(RandomSubsetDse, RejectsBadFraction) {
  const auto& k = kernels::find_benchmark("2mm").model;
  EXPECT_THROW(random_subset_dse(model(), k, space(), 0.0, 1, 1), ContractViolation);
  EXPECT_THROW(random_subset_dse(model(), k, space(), 1.5, 1, 1), ContractViolation);
  EXPECT_THROW(random_subset_dse(model(), k, space(), -0.25, 1, 1), ContractViolation);
  EXPECT_THROW(random_subset_dse(model(), k, space(), std::nan(""), 1, 1),
               ContractViolation);
}

TEST(RandomSubsetDse, RejectsZeroRepetitions) {
  const auto& k = kernels::find_benchmark("2mm").model;
  try {
    random_subset_dse(model(), k, space(), 0.25, 0, 1);
    FAIL() << "repetitions == 0 must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("repetitions"), std::string::npos)
        << "the violation should name the bad argument, got: " << e.what();
  }
}

TEST(StratifiedDse, RejectsZeroRepetitions) {
  const auto& k = kernels::find_benchmark("2mm").model;
  EXPECT_THROW(stratified_dse(model(), k, space(), 6, 0, 1), ContractViolation);
}

TEST(StratifiedDse, CoversEveryStratumWithAnchors) {
  const auto points = stratified_dse(model(), kernels::find_benchmark("2mm").model,
                                     space(), 5, 2, 7);
  // Every (config, binding) pair appears, with threads 1 and 32 present.
  std::set<std::pair<std::size_t, int>> strata;
  std::set<std::size_t> threads_seen;
  for (const auto& p : points) {
    strata.insert({p.config_index,
                   p.configuration.binding == platform::BindingPolicy::kClose ? 0 : 1});
    threads_seen.insert(p.configuration.threads);
  }
  EXPECT_EQ(strata.size(), 16u);
  EXPECT_TRUE(threads_seen.count(1) > 0);
  EXPECT_TRUE(threads_seen.count(32) > 0);
  EXPECT_LE(points.size(), 16u * 5u);
}

TEST(StratifiedDse, LadderIsGeometric) {
  const auto points = stratified_dse(model(), kernels::find_benchmark("mvt").model,
                                     space(), 6, 1, 7);
  std::set<std::size_t> threads_seen;
  for (const auto& p : points) threads_seen.insert(p.configuration.threads);
  // Geometric spacing: more resolution at low thread counts.
  std::size_t below_8 = 0;
  for (const std::size_t t : threads_seen)
    if (t <= 8) ++below_8;
  EXPECT_GE(below_8, threads_seen.size() / 2);
}

TEST(StratifiedDse, SampledKnowledgeStillDrivesTheAsrtm) {
  // The point of DSE-strategy agnosticism: an AS-RTM on a stratified KB
  // makes decisions close to the full-factorial one.
  using M = margot::ContextMetrics;
  const auto& k = kernels::find_benchmark("2mm").model;

  const auto full = full_factorial_dse(model(), k, space(), 3, 2018);
  const auto sampled = stratified_dse(model(), k, space(), 6, 3, 2018);

  margot::Asrtm full_rtm(to_knowledge_base(full));
  margot::Asrtm samp_rtm(to_knowledge_base(sampled));
  for (auto* rtm : {&full_rtm, &samp_rtm}) {
    rtm->set_rank(margot::Rank::minimize_exec_time(M::kExecTime));
    rtm->add_constraint({M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  }
  const double t_full =
      full_rtm.best_operating_point().metrics[M::kExecTime].mean;
  const double t_samp =
      samp_rtm.best_operating_point().metrics[M::kExecTime].mean;
  EXPECT_LE(t_samp, t_full * 1.35) << "sampled KB should be within ~35% of full";
  EXPECT_GE(t_samp, t_full * 0.95) << "sampled KB cannot beat the superset";
}

}  // namespace
}  // namespace socrates::dse
