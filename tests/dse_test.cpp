// Tests for the DSE engine: full factorial sweep, Pareto filtering
// (property-based), knowledge-base export and knob decoding.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dse/dse.hpp"
#include "kernels/registry.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace socrates::dse {
namespace {

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

std::vector<ProfiledPoint> profile(const char* bench, std::size_t reps = 3) {
  const auto space = DesignSpace::paper_space(model().topology());
  return full_factorial_dse(model(), kernels::find_benchmark(bench).model, space, reps,
                            1234);
}

TEST(DesignSpace, PaperSpaceShape) {
  const auto space = DesignSpace::paper_space(model().topology());
  EXPECT_EQ(space.configs.size(), 8u);
  EXPECT_EQ(space.thread_counts.size(), 32u);
  EXPECT_EQ(space.bindings.size(), 2u);
  EXPECT_EQ(space.size(), 512u);
}

TEST(Dse, CoversTheWholeSpaceOnce) {
  const auto points = profile("2mm");
  EXPECT_EQ(points.size(), 512u);
  std::set<std::tuple<std::size_t, std::size_t, int>> seen;
  for (const auto& p : points) {
    seen.insert({p.config_index, p.configuration.threads,
                 p.configuration.binding == platform::BindingPolicy::kClose ? 0 : 1});
    EXPECT_GT(p.exec_time_mean_s, 0.0);
    EXPECT_GT(p.power_mean_w, 0.0);
    EXPECT_GE(p.exec_time_stddev_s, 0.0);
  }
  EXPECT_EQ(seen.size(), 512u);
}

TEST(Dse, RepetitionsTightenStddev) {
  const auto points = profile("mvt", 8);
  for (const auto& p : points)
    EXPECT_LT(p.exec_time_stddev_s, p.exec_time_mean_s * 0.2);
}

TEST(Dse, DeterministicForSeed) {
  const auto a = profile("syrk");
  const auto b = profile("syrk");
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].exec_time_mean_s, b[i].exec_time_mean_s);
}

// ---- Pareto properties ----------------------------------------------------------

TEST(Pareto, NoSurvivorIsDominated) {
  const auto points = profile("2mm");
  const auto front = pareto_filter(points);
  ASSERT_FALSE(front.empty());
  for (const std::size_t i : front) {
    for (const std::size_t j : front) {
      if (i == j) continue;
      const bool dominates = points[j].throughput() >= points[i].throughput() &&
                             points[j].power_mean_w <= points[i].power_mean_w &&
                             (points[j].throughput() > points[i].throughput() ||
                              points[j].power_mean_w < points[i].power_mean_w);
      EXPECT_FALSE(dominates);
    }
  }
}

TEST(Pareto, EveryDominatedPointIsExcluded) {
  const auto points = profile("atax");
  const auto front = pareto_filter(points);
  const std::set<std::size_t> in_front(front.begin(), front.end());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (in_front.count(i) > 0) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i == j) continue;
      dominated = points[j].throughput() >= points[i].throughput() &&
                  points[j].power_mean_w <= points[i].power_mean_w &&
                  (points[j].throughput() > points[i].throughput() ||
                   points[j].power_mean_w < points[i].power_mean_w);
    }
    EXPECT_TRUE(dominated) << "point " << i << " excluded but not dominated";
  }
}

TEST(Pareto, ExtremePointsSurvive) {
  const auto points = profile("jacobi-2d");
  const auto front = pareto_filter(points);
  std::size_t best_thr = 0;
  std::size_t best_pow = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].throughput() > points[best_thr].throughput()) best_thr = i;
    if (points[i].power_mean_w < points[best_pow].power_mean_w) best_pow = i;
  }
  const std::set<std::size_t> in_front(front.begin(), front.end());
  EXPECT_TRUE(in_front.count(best_thr) > 0);
  EXPECT_TRUE(in_front.count(best_pow) > 0);
}

TEST(Pareto, SyntheticRandomSetProperty) {
  // Property sweep on random synthetic point clouds.
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    std::vector<ProfiledPoint> points(60);
    for (auto& p : points) {
      p.exec_time_mean_s = rng.uniform(0.1, 10.0);
      p.power_mean_w = rng.uniform(40.0, 150.0);
    }
    const auto front = pareto_filter(points);
    ASSERT_FALSE(front.empty());
    // Front sorted by power must have strictly increasing throughput.
    std::vector<std::size_t> sorted(front.begin(), front.end());
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return points[a].power_mean_w < points[b].power_mean_w;
    });
    for (std::size_t k = 1; k < sorted.size(); ++k)
      EXPECT_GT(points[sorted[k]].throughput(), points[sorted[k - 1]].throughput());
  }
}

TEST(Pareto, WideSpreadConfirmsNoOneFitsAll) {
  // The premise of Figure 3: the Pareto front spans a wide power range
  // for scalable benchmarks.  Amdahl-limited seidel-2d legitimately has
  // a narrow front (its box in the paper's Figure 3 is narrow too), so
  // the per-benchmark floor is modest and the scalable kernels must
  // show a genuinely wide spread.
  double widest = 0.0;
  for (const auto& b : kernels::all_benchmarks()) {
    const auto space = DesignSpace::paper_space(model().topology());
    const auto points = full_factorial_dse(model(), b.model, space, 2, 7);
    const auto front = pareto_filter(points);
    ASSERT_GT(front.size(), 3u) << b.name;
    double pmin = 1e100, pmax = 0.0;
    for (const std::size_t i : front) {
      pmin = std::min(pmin, points[i].power_mean_w);
      pmax = std::max(pmax, points[i].power_mean_w);
    }
    EXPECT_GT(pmax / pmin, 1.05) << b.name;
    widest = std::max(widest, pmax / pmin);
  }
  EXPECT_GT(widest, 2.0);
}

TEST(Pareto, ExactDuplicatesAllSurvive) {
  // Regression for the sort-based filter: points identical on both axes
  // do not dominate each other, so every copy must survive — and with
  // its original index.
  const auto make = [](double exec_s, double power_w) {
    ProfiledPoint p;
    p.exec_time_mean_s = exec_s;
    p.power_mean_w = power_w;
    return p;
  };
  const std::vector<ProfiledPoint> points = {
      make(1.0, 80.0),   // 0: optimal, duplicated at 3 and 5
      make(2.0, 100.0),  // 1: dominated
      make(0.5, 120.0),  // 2: faster but hungrier -> survives
      make(1.0, 80.0),   // 3: duplicate of 0
      make(1.0, 90.0),   // 4: dominated by 0/3/5 (same thr, more power)
      make(1.0, 80.0),   // 5: duplicate of 0
  };
  const auto front = pareto_filter(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2, 3, 5}));
}

TEST(Pareto, TiesOnASingleAxisAreResolvedStrictly) {
  const auto make = [](double exec_s, double power_w) {
    ProfiledPoint p;
    p.exec_time_mean_s = exec_s;
    p.power_mean_w = power_w;
    return p;
  };
  // Equal power, different throughput: only the fastest survives.
  {
    const std::vector<ProfiledPoint> points = {make(2.0, 90.0), make(1.0, 90.0),
                                               make(3.0, 90.0)};
    EXPECT_EQ(pareto_filter(points), (std::vector<std::size_t>{1}));
  }
  // Equal throughput, different power: only the cheapest survives.
  {
    const std::vector<ProfiledPoint> points = {make(1.0, 110.0), make(1.0, 70.0),
                                               make(1.0, 90.0)};
    EXPECT_EQ(pareto_filter(points), (std::vector<std::size_t>{1}));
  }
}

TEST(Pareto, MatchesBruteForceOnTieHeavyClouds) {
  // Random clouds drawn from a tiny grid of values, so exact ties and
  // duplicates are everywhere; the O(n log n) sweep must agree with the
  // O(n^2) dominance definition point by point.
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    std::vector<ProfiledPoint> points(40);
    for (auto& p : points) {
      p.exec_time_mean_s = 0.5 + 0.5 * static_cast<double>(rng.uniform_int(0, 3));
      p.power_mean_w = 60.0 + 20.0 * static_cast<double>(rng.uniform_int(0, 3));
    }
    const auto front = pareto_filter(points);
    // Indices must come back ascending and unique.
    EXPECT_TRUE(std::is_sorted(front.begin(), front.end()));
    EXPECT_EQ(std::set<std::size_t>(front.begin(), front.end()).size(), front.size());

    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
        if (i == j) continue;
        dominated = points[j].throughput() >= points[i].throughput() &&
                    points[j].power_mean_w <= points[i].power_mean_w &&
                    (points[j].throughput() > points[i].throughput() ||
                     points[j].power_mean_w < points[i].power_mean_w);
      }
      if (!dominated) expected.push_back(i);
    }
    EXPECT_EQ(front, expected) << "round " << round;
  }
}

// ---- knowledge base export ---------------------------------------------------------

TEST(KbExport, SchemaAndSize) {
  const auto points = profile("gemver");
  const auto kb = to_knowledge_base(points);
  EXPECT_EQ(kb.size(), points.size());
  EXPECT_EQ(kb.metric_names(),
            (std::vector<std::string>{"exec_time_s", "power_w", "throughput"}));
  EXPECT_EQ(kb.knob_names(), (std::vector<std::string>{"config", "threads", "binding"}));
}

TEST(KbExport, MetricsMatchProfiledPoints) {
  const auto points = profile("mvt");
  const auto kb = to_knowledge_base(points);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(kb[i].metrics[0].mean, points[i].exec_time_mean_s);
    EXPECT_DOUBLE_EQ(kb[i].metrics[1].mean, points[i].power_mean_w);
    EXPECT_DOUBLE_EQ(kb[i].metrics[2].mean, points[i].throughput());
  }
}

TEST(KbExport, DecodeKnobsRoundTrips) {
  const auto space = DesignSpace::paper_space(model().topology());
  const auto points = profile("2mm");
  const auto kb = to_knowledge_base(points);
  for (std::size_t i = 0; i < kb.size(); i += 37) {
    const auto config = decode_knobs(space, kb[i].knobs);
    EXPECT_EQ(config.threads, points[i].configuration.threads);
    EXPECT_EQ(config.binding, points[i].configuration.binding);
    EXPECT_TRUE(config.flags == points[i].configuration.flags);
  }
}

TEST(KbExport, DecodeRejectsMalformedKnobs) {
  const auto space = DesignSpace::paper_space(model().topology());
  EXPECT_THROW(decode_knobs(space, {0, 1}), ContractViolation);
  EXPECT_THROW(decode_knobs(space, {99, 1, 0}), ContractViolation);
  EXPECT_THROW(decode_knobs(space, {0, 0, 0}), ContractViolation);
  EXPECT_THROW(decode_knobs(space, {0, 1, 5}), ContractViolation);
}

}  // namespace
}  // namespace socrates::dse
