// Tests for the synthetic corpus generator and the COBAYN model.
#include <gtest/gtest.h>

#include <set>

#include "cobayn/cobayn.hpp"
#include "cobayn/corpus.hpp"
#include "cobayn/evaluation.hpp"
#include "ir/parser.hpp"
#include "kernels/registry.hpp"
#include "kernels/sources.hpp"
#include "platform/compiler_model.hpp"
#include "support/error.hpp"

namespace socrates::cobayn {
namespace {

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

const CobaynModel& trained() {
  static const CobaynModel kModel = [] {
    return CobaynModel::train(make_corpus(48, 2018), model());
  }();
  return kModel;
}

// ---- corpus ------------------------------------------------------------------

TEST(Corpus, GeneratedSourcesParse) {
  for (const auto& k : make_corpus(16, 7)) {
    EXPECT_NO_THROW(ir::parse(k.source)) << k.spec.name;
  }
}

TEST(Corpus, GeneratedKernelHasExpectedStructure) {
  SyntheticSpec spec;
  spec.name = "t";
  spec.loop_nests = 2;
  spec.nest_depth = 2;
  spec.body_ops = 3;
  spec.has_branch = true;
  spec.has_call = true;
  const auto tu = ir::parse(generate_source(spec));
  EXPECT_NE(tu.find_function("kernel_t"), nullptr);
  EXPECT_NE(tu.find_function("helper"), nullptr);
  EXPECT_NE(tu.find_function("main"), nullptr);
  const auto fv = kernel_features_of_source(generate_source(spec));
  EXPECT_EQ(fv[features::kNumLoops], 4.0);  // 2 nests x depth 2
  EXPECT_GE(fv[features::kNumIfs], 2.0);
  EXPECT_GE(fv[features::kNumCalls], 2.0);
}

TEST(Corpus, SpecDrivesModelParamsConsistently) {
  Rng rng(3);
  SyntheticSpec branchy;
  branchy.name = "b";
  branchy.has_branch = true;
  SyntheticSpec straight = branchy;
  straight.name = "s";
  straight.has_branch = false;
  EXPECT_GT(derive_model_params(branchy, rng).branchiness,
            derive_model_params(straight, rng).branchiness);
}

TEST(Corpus, DeterministicForSeed) {
  const auto a = make_corpus(8, 42);
  const auto b = make_corpus(8, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].params.unroll_affinity, b[i].params.unroll_affinity);
  }
}

TEST(Corpus, Diversity) {
  const auto corpus = make_corpus(40, 5);
  std::set<std::string> sources;
  for (const auto& k : corpus) sources.insert(k.source);
  EXPECT_GT(sources.size(), 20u);
}

// ---- model -------------------------------------------------------------------

TEST(Cobayn, TrainingProducesRowsAndParameters) {
  EXPECT_GE(trained().training_rows(), 48u * 13u / 2);  // ~13 good configs/kernel
  EXPECT_GT(trained().network().parameter_count(), 10u);
}

TEST(Cobayn, PredictionsAreRankedAndDistinct) {
  const auto fv = kernel_features_of_source(kernels::benchmark_source("2mm"));
  const auto ranked = trained().predict(fv, 8);
  ASSERT_EQ(ranked.size(), 8u);
  std::set<std::string> distinct;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    distinct.insert(ranked[i].config.pragma_options());
    if (i > 0) EXPECT_LE(ranked[i].probability, ranked[i - 1].probability);
    EXPECT_GT(ranked[i].probability, 0.0);
  }
  EXPECT_EQ(distinct.size(), 8u);
}

TEST(Cobayn, PredictNamedUsesCfNames) {
  const auto fv = kernel_features_of_source(kernels::benchmark_source("atax"));
  const auto named = trained().predict_named(fv, 4);
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].name, "CF1");
  EXPECT_EQ(named[3].name, "CF4");
}

TEST(Cobayn, PredictedConfigsBeatWorstConfigs) {
  // Prediction quality: across the 12 evaluation kernels, the best of
  // the 4 predicted configs must beat the *median* config of the full
  // 128-point space on modelled execution time for most kernels.
  const auto space = platform::cobayn_search_space();
  std::size_t wins = 0;
  for (const auto& b : kernels::all_benchmarks()) {
    const auto fv = kernel_features_of_source(kernels::benchmark_source(b.name));
    const auto predicted = trained().predict(fv, 4);

    std::vector<double> all_times;
    platform::Configuration rc;
    rc.threads = 16;
    for (const auto& f : space) {
      rc.flags = f;
      all_times.push_back(model().evaluate(b.model, rc).exec_time_s);
    }
    std::sort(all_times.begin(), all_times.end());
    const double median = all_times[all_times.size() / 2];

    double best_predicted = 1e100;
    for (const auto& p : predicted) {
      rc.flags = p.config;
      best_predicted = std::min(best_predicted, model().evaluate(b.model, rc).exec_time_s);
    }
    if (best_predicted < median) ++wins;
  }
  EXPECT_GE(wins, 9u) << "predictions should be informative for most kernels";
}

TEST(Cobayn, UntrainedModelRejectsQueries) {
  // train() is the only constructor path; here we only verify the
  // corpus-size contract.
  EXPECT_THROW(CobaynModel::train(make_corpus(2, 1), model()), ContractViolation);
}

TEST(Cobayn, FeatureProjectionIndicesValid) {
  for (const std::size_t idx : CobaynModel::model_feature_indices())
    EXPECT_LT(idx, features::kFeatureCount);
}

TEST(Cobayn, KernelFeaturesOfSourceRequiresKernel) {
  EXPECT_THROW(kernel_features_of_source("int main(void) { return 0; }"),
               ContractViolation);
}

TEST(Cobayn, SampledConfigsAreDistinctAndBiased) {
  const auto fv = kernel_features_of_source(kernels::benchmark_source("2mm"));
  Rng rng(31);
  const auto sampled = trained().sample_configs(rng, fv, 16);
  ASSERT_EQ(sampled.size(), 16u);
  std::set<std::string> distinct;
  for (const auto& c : sampled) distinct.insert(c.pragma_options());
  EXPECT_EQ(distinct.size(), 16u);

  // Sampling is biased towards the posterior mode: over many draws the
  // exact-top-1 config must appear as the first sample most of the time
  // relative to a uniform 1/128 baseline.
  const auto top = trained().predict(fv, 1).front().config;
  int hits = 0;
  for (int round = 0; round < 200; ++round) {
    Rng r(static_cast<std::uint64_t>(round) + 1000);
    if (trained().sample_configs(r, fv, 1).front() == top) ++hits;
  }
  EXPECT_GT(hits, 10);  // uniform would give ~1.6 of 200
}

TEST(Cobayn, CrossValidationGeneralizes) {
  // On held-out kernels the predictions must beat -O3 on average and
  // approach the oracle as the prediction budget grows.
  const auto corpus = make_corpus(20, 9);
  const auto cv1 = cross_validate(corpus, model(), 1);
  const auto cv4 = cross_validate(corpus, model(), 4);
  EXPECT_EQ(cv1.folds.size(), corpus.size());
  EXPECT_LT(cv1.geomean_predicted_slowdown, cv1.geomean_o3_slowdown);
  EXPECT_LE(cv4.geomean_predicted_slowdown, cv1.geomean_predicted_slowdown + 1e-12);
  EXPECT_GE(cv4.geomean_predicted_slowdown, 1.0);  // cannot beat the oracle
  EXPECT_GT(cv4.wins_vs_o3, corpus.size() / 2);
}

TEST(Cobayn, CrossValidationFoldsAreConsistent) {
  const auto corpus = make_corpus(8, 3);
  const auto cv = cross_validate(corpus, model(), 2);
  for (const auto& fold : cv.folds) {
    EXPECT_GE(fold.predicted_time_s, fold.oracle_time_s);
    EXPECT_GE(fold.o2_time_s, fold.oracle_time_s);
    EXPECT_GE(fold.o3_time_s, fold.oracle_time_s * 0.999);
  }
}

TEST(Cobayn, CrossValidationRejectsTinyCorpus) {
  EXPECT_THROW(cross_validate(make_corpus(4, 1), model(), 1), ContractViolation);
}

TEST(Cobayn, SampleRejectsBadCounts) {
  const auto fv = kernel_features_of_source(kernels::benchmark_source("mvt"));
  Rng rng(1);
  EXPECT_THROW(trained().sample_configs(rng, fv, 0), ContractViolation);
  // Asking for more distinct configurations than the space holds is
  // clamped to the full space, not an error (a caller sizing its draw
  // from a budget should get "everything", deduplicated).
  const auto all = trained().sample_configs(rng, fv, 129);
  EXPECT_EQ(all.size(), std::size_t{2} << platform::kFlagCount);
}

}  // namespace
}  // namespace socrates::cobayn
