// Tests for the weaver engine: join points, attributes and actions.
#include <gtest/gtest.h>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "support/error.hpp"
#include "weaver/aspects.hpp"
#include "weaver/weaver.hpp"

namespace socrates::weaver {
namespace {

const char* kSmallApp = R"(
#include <stdio.h>

int g;

void kernel_work(int n)
{
  int i;
  #pragma omp parallel for
  for (i = 0; i < n; i++)
    g += i;
}

int main(int argc, char **argv)
{
  kernel_work(10);
  kernel_work(20);
  return 0;
}
)";

struct Fixture {
  ir::TranslationUnit tu = ir::parse(kSmallApp);
  WeavingMetrics metrics;
  Weaver weaver{tu, metrics};
};

TEST(Weaver, SelectFunctionsFindsDefinitions) {
  Fixture f;
  EXPECT_EQ(f.weaver.select_functions().size(), 2u);
  const auto kernels = f.weaver.select_functions_with_prefix("kernel_");
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0]->name, "kernel_work");
}

TEST(Weaver, AttributeReadsCount) {
  Fixture f;
  auto* fn = f.tu.find_function("kernel_work");
  const std::size_t before = f.metrics.attributes_checked;
  f.weaver.att_name(*fn);
  f.weaver.att_return_type(*fn);
  f.weaver.att_param_count(*fn);
  f.weaver.att_param(*fn, 0);  // counts 2 (type + name)
  EXPECT_EQ(f.metrics.attributes_checked - before, 5u);
}

TEST(Weaver, OmpPragmaSelectionAndInfo) {
  Fixture f;
  auto* fn = f.tu.find_function("kernel_work");
  const auto pragmas = f.weaver.select_omp_pragmas(*fn);
  ASSERT_EQ(pragmas.size(), 1u);
  const auto info = f.weaver.att_omp_info(*pragmas[0]);
  EXPECT_EQ(info.directive, "parallel for");
}

TEST(Weaver, SelectLoopsAndDepth) {
  Fixture f;
  auto* fn = f.tu.find_function("kernel_work");
  const auto loops = f.weaver.select_loops(*fn);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(f.weaver.att_loop_depth(*loops[0]), 0u);
}

TEST(Weaver, SelectCallsByName) {
  Fixture f;
  auto* main_fn = f.tu.find_function("main");
  EXPECT_EQ(f.weaver.select_calls(*main_fn, "kernel_work").size(), 2u);
  EXPECT_EQ(f.weaver.select_calls(*main_fn, "nothing").size(), 0u);
}

TEST(Weaver, CloneFunctionInsertsAfterOriginal) {
  Fixture f;
  auto* fn = f.tu.find_function("kernel_work");
  auto* clone = f.weaver.act_clone_function(*fn, "kernel_work_v1");
  EXPECT_EQ(clone->name, "kernel_work_v1");
  EXPECT_EQ(f.metrics.actions_performed, 1u);
  // Clone is printed after the original and is structurally identical.
  const std::string out = ir::print(f.tu);
  EXPECT_LT(out.find("void kernel_work(int n)"), out.find("void kernel_work_v1(int n)"));
  // Mutating the clone must not affect the original (deep copy).
  clone->body->stmts.clear();
  EXPECT_FALSE(f.tu.find_function("kernel_work")->body->stmts.empty());
}

TEST(Weaver, InsertPragmasAroundFunction) {
  Fixture f;
  auto* fn = f.tu.find_function("kernel_work");
  f.weaver.act_insert_pragma_before(*fn, ir::Pragma{"GCC optimize(\"O3\")"});
  f.weaver.act_insert_pragma_after(*fn, ir::Pragma{"GCC pop_options"});
  const std::string out = ir::print(f.tu);
  EXPECT_LT(out.find("#pragma GCC optimize(\"O3\")"), out.find("void kernel_work"));
  EXPECT_LT(out.find("void kernel_work"), out.find("#pragma GCC pop_options"));
}

TEST(Weaver, AddIncludeAfterExistingOnes) {
  Fixture f;
  f.weaver.act_add_include("\"margot.h\"");
  const std::string out = ir::print(f.tu);
  EXPECT_LT(out.find("#include <stdio.h>"), out.find("#include \"margot.h\""));
  EXPECT_LT(out.find("#include \"margot.h\""), out.find("int g;"));
}

TEST(Weaver, AddGlobalBeforeFirstFunction) {
  Fixture f;
  ir::VarDecl d;
  d.type_text = "int";
  d.name = "__margot_version";
  d.init = ir::parse_expression("0");
  f.weaver.act_add_global(std::move(d));
  const std::string out = ir::print(f.tu);
  EXPECT_LT(out.find("int __margot_version = 0;"), out.find("void kernel_work"));
}

TEST(Weaver, RetargetCall) {
  Fixture f;
  auto* main_fn = f.tu.find_function("main");
  for (auto* call : f.weaver.select_calls(*main_fn, "kernel_work"))
    f.weaver.act_retarget_call(*call, "kernel_work_wrapper");
  const std::string out = ir::print(f.tu);
  EXPECT_NE(out.find("kernel_work_wrapper(10);"), std::string::npos);
  EXPECT_NE(out.find("kernel_work_wrapper(20);"), std::string::npos);
}

TEST(Weaver, InsertAtBegin) {
  Fixture f;
  auto* main_fn = f.tu.find_function("main");
  f.weaver.act_insert_at_begin(*main_fn, ir::parse_statement("margot_init();"));
  EXPECT_EQ(ir::print_stmt(*main_fn->body->stmts.front()), "margot_init();\n");
}

TEST(Weaver, InsertAroundCallsWrapsEverySite) {
  Fixture f;
  auto* main_fn = f.tu.find_function("main");
  const std::size_t sites = f.weaver.act_insert_around_calls(
      *main_fn, "kernel_work", {"before_a();", "before_b();"}, {"after();"});
  EXPECT_EQ(sites, 2u);
  const std::string out = ir::print(f.tu);
  // Order at each site: before_a, before_b, call, after.
  const auto a = out.find("before_a();");
  const auto b = out.find("before_b();", a);
  const auto c = out.find("kernel_work(10);", b);
  const auto d = out.find("after();", c);
  EXPECT_NE(d, std::string::npos);
  EXPECT_TRUE(a < b && b < c && c < d);
}

TEST(Weaver, WovenOutputStillParses) {
  Fixture f;
  auto* fn = f.tu.find_function("kernel_work");
  f.weaver.act_clone_function(*fn, "kernel_work_o3_close");
  f.weaver.act_insert_pragma_before(*fn, ir::Pragma{"GCC optimize(\"O3\")"});
  auto* main_fn = f.tu.find_function("main");
  f.weaver.act_insert_around_calls(*main_fn, "kernel_work", {"margot_update();"},
                                   {"margot_stop_monitors();"});
  const std::string out = ir::print(f.tu);
  EXPECT_NO_THROW(ir::parse(out));
}

TEST(Weaver, ForeignFunctionRejected) {
  Fixture f;
  const auto other = ir::parse("void alien(void) { }");
  const auto* alien = other.find_function("alien");
  EXPECT_THROW(f.weaver.act_insert_pragma_before(*alien, ir::Pragma{"x"}),
               ContractViolation);
}

// ---- aspects ------------------------------------------------------------------

TEST(Aspects, StrategySourcesAreNonTrivial) {
  EXPECT_GT(lara_logical_loc(multiversioning_aspect()), 40u);
  EXPECT_GT(lara_logical_loc(autotuner_aspect()), 10u);
  EXPECT_EQ(strategy_logical_loc(), lara_logical_loc(multiversioning_aspect()) +
                                        lara_logical_loc(autotuner_aspect()));
}

TEST(Aspects, LocCounterSkipsCommentsAndBlanks) {
  EXPECT_EQ(lara_logical_loc("// only a comment\n\n  \n"), 0u);
  EXPECT_EQ(lara_logical_loc("a = 1;\n// c\nb = 2;\n"), 2u);
  EXPECT_EQ(lara_logical_loc("/* block\n comment */\nx\n"), 1u);
}

}  // namespace
}  // namespace socrates::weaver
