// End-to-end chaos tests: a full Pipeline campaign under fault
// injection.  Below the permanent-failure threshold the supervisor's
// retries absorb every injected fault and the produced knowledge base
// is byte-identical to a chaos-free run; cache faults degrade to
// recomputation; sustained failure surfaces as an orderly ChaosFault
// (with the retry trail in the stage reports), never a crash.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "margot/kb_io.hpp"
#include "socrates/pipeline.hpp"
#include "support/artifact_cache.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

namespace fs = std::filesystem;

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

ToolchainOptions small_options() {
  ToolchainOptions opts;
  opts.corpus_size = 16;
  opts.dse_repetitions = 2;
  opts.work_scale = 0.05;
  opts.jobs = 2;
  return opts;
}

/// Builds "2mm" with a private memory-only cache and returns the
/// serialized knowledge plus the pipeline report.
struct BuildOutcome {
  std::string knowledge;
  PipelineReport report;
};

BuildOutcome build_once(const ToolchainOptions& opts) {
  ArtifactCache cache;
  Pipeline pipeline(model(), opts, &cache);
  const auto bin = pipeline.build("2mm");
  return {margot::knowledge_to_string(bin.knowledge), pipeline.last_report()};
}

class PipelineChaosTest : public ::testing::Test {
 protected:
  // Disarm on entry too: a SOCRATES_CHAOS environment (the chaos-smoke
  // preset) must not skew the chaos-free reference builds.
  void SetUp() override { ChaosEngine::global().disarm(); }
  void TearDown() override { ChaosEngine::global().disarm(); }
};

TEST_F(PipelineChaosTest, RetriedChaosYieldsByteIdenticalKnowledge) {
  const auto clean = build_once(small_options());

  // Enough retry headroom that every injected fault is eventually
  // absorbed: per-site exhaustion probability is 0.25^8 ~ 1.5e-5.
  ChaosSpec spec;
  spec.stage_fail = 0.25;
  spec.stage_slow = 0.2;
  spec.slow_ms = 1.0;
  spec.seed = 2024;
  ChaosEngine::global().install(spec);

  auto opts = small_options();
  opts.supervisor.max_attempts = 8;
  opts.dse_point_attempts = 10;
  const auto chaotic = build_once(opts);

  EXPECT_GT(ChaosEngine::global().injected(), 0u);
  const auto* dse = chaotic.report.stage("Dse");
  ASSERT_NE(dse, nullptr);
  EXPECT_EQ(dse->dropped_points, 0u) << "all points must survive their retries";
  // The whole point of the supervisor: the chaotic campaign converges
  // to the exact bytes of the chaos-free one.
  EXPECT_EQ(chaotic.knowledge, clean.knowledge);
}

TEST_F(PipelineChaosTest, CacheFaultsDegradeToRecomputationNotFailure) {
  const auto clean = build_once(small_options());

  const auto dir = fs::temp_directory_path() /
                   ("socrates_chaos_pipe." + std::to_string(::getpid()));
  fs::remove_all(dir);

  // Every disk write is cut short and every disk read corrupted: the
  // cache is effectively useless, the pipeline must not care.
  ChaosSpec spec;
  spec.cache_write = 1.0;
  spec.cache_read = 1.0;
  ChaosEngine::global().install(spec);

  ArtifactCache cache(dir.string());
  Pipeline pipeline(model(), small_options(), &cache);
  const auto bin = pipeline.build("2mm");
  EXPECT_EQ(margot::knowledge_to_string(bin.knowledge), clean.knowledge);

  ChaosEngine::global().disarm();
  fs::remove_all(dir);
}

TEST_F(PipelineChaosTest, SustainedFailureIsAnOrderlyChaosFault) {
  ChaosSpec spec;
  spec.stage_fail = 1.0;  // above any retry budget
  ChaosEngine::global().install(spec);

  auto opts = small_options();
  opts.supervisor.max_attempts = 2;
  ArtifactCache cache;
  Pipeline pipeline(model(), opts, &cache);
  EXPECT_THROW(pipeline.build("2mm"), ChaosFault);

  // The pipeline survives the exhaustion: disarm and the same instance
  // builds cleanly.
  ChaosEngine::global().disarm();
  EXPECT_NO_THROW(pipeline.build("2mm"));
}

TEST_F(PipelineChaosTest, ExhaustedOptionalStagesFallBackAndTheBuildCompletes) {
  // Tight retry budget under heavy chaos: optional stages (Features,
  // CobaynPredict, Weave) are expected to exhaust now and then and must
  // substitute their degraded products; mandatory stages may exhaust
  // too, which surfaces as ChaosFault — an orderly outcome, not a
  // crash.  The schedule is deterministic per seed, so sweeping a few
  // seeds reliably exhibits at least one degraded-but-complete build.
  auto opts = small_options();
  opts.supervisor.max_attempts = 2;
  opts.dse_point_attempts = 12;  // keep point coverage out of the picture

  std::size_t degraded_builds = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ChaosSpec spec;
    spec.stage_fail = 0.55;
    spec.seed = seed;
    ChaosEngine::global().install(spec);

    ArtifactCache cache;
    Pipeline pipeline(model(), opts, &cache);
    try {
      const auto bin = pipeline.build("2mm");
      std::size_t degraded_stages = 0;
      for (const auto& stage : pipeline.last_report().stages) {
        EXPECT_LE(stage.attempts, opts.supervisor.max_attempts);
        if (stage.degraded()) {
          ++degraded_stages;
          EXPECT_FALSE(stage.note.empty()) << stage.name;
        }
      }
      if (degraded_stages > 0) {
        ++degraded_builds;
        // Degraded products are substitutes, not absences: the campaign
        // still ends in a usable knowledge base.
        EXPECT_GT(bin.knowledge.size(), 0u);
      }
    } catch (const ChaosFault&) {
      // A mandatory stage (Parse/Dse/Knowledge) exhausted its budget.
    } catch (const Error&) {
      // Same, wrapped by a stage that classifies its own failures.
    }
    ChaosEngine::global().disarm();
  }
  EXPECT_GE(degraded_builds, 1u)
      << "no seed in the sweep produced a degraded-but-complete build";
}

}  // namespace
}  // namespace socrates
