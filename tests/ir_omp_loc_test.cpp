// Tests for the OpenMP pragma model and the logical-LOC counter.
#include <gtest/gtest.h>

#include "ir/loc_counter.hpp"
#include "ir/omp.hpp"
#include "ir/parser.hpp"

namespace socrates::ir {
namespace {

TEST(Omp, ParsesDirectiveAndClauses) {
  const Pragma p{"omp parallel for num_threads(4) proc_bind(close) nowait"};
  const auto info = parse_omp(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->directive, "parallel for");
  EXPECT_EQ(info->clause_argument("num_threads"), "4");
  EXPECT_EQ(info->clause_argument("proc_bind"), "close");
  EXPECT_TRUE(info->has_clause("nowait"));
  EXPECT_EQ(info->clause_argument("nowait"), std::nullopt);
}

TEST(Omp, NonOmpPragmaYieldsNullopt) {
  EXPECT_FALSE(parse_omp(Pragma{"GCC optimize(\"O2\")"}).has_value());
}

TEST(Omp, ClauseWithExpressionArgument) {
  const auto info = parse_omp(Pragma{"omp parallel for private(i, j) num_threads(n + 1)"});
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->clause_argument("private"), "i, j");
  EXPECT_EQ(info->clause_argument("num_threads"), "n + 1");
}

TEST(Omp, SetClauseReplacesOrAdds) {
  auto info = *parse_omp(Pragma{"omp parallel for num_threads(2)"});
  info.set_clause("num_threads", std::string("NT"));
  info.set_clause("proc_bind", std::string("spread"));
  EXPECT_EQ(info.clause_argument("num_threads"), "NT");
  const std::string out = info.render();
  EXPECT_EQ(out, "omp parallel for num_threads(NT) proc_bind(spread)");
}

TEST(Omp, RemoveClause) {
  auto info = *parse_omp(Pragma{"omp for nowait schedule(static)"});
  info.remove_clause("nowait");
  EXPECT_FALSE(info.has_clause("nowait"));
  EXPECT_TRUE(info.has_clause("schedule"));
}

TEST(Omp, RenderRoundTrips) {
  const Pragma p{"omp parallel for private(j, k) num_threads(8)"};
  const auto info = *parse_omp(p);
  const auto reparsed = *parse_omp(Pragma{info.render()});
  EXPECT_EQ(reparsed.directive, info.directive);
  EXPECT_EQ(reparsed.clauses.size(), info.clauses.size());
}

TEST(Omp, GccOptimizePragmaHelpers) {
  const Pragma p = gcc_optimize_pragma("O2,no-inline-functions");
  EXPECT_TRUE(p.is_gcc_optimize());
  EXPECT_EQ(gcc_optimize_options(p), "O2,no-inline-functions");
  EXPECT_EQ(gcc_optimize_options(Pragma{"omp for"}), std::nullopt);
}

// ---- logical LOC -------------------------------------------------------------

TEST(LogicalLoc, SimpleStatementsCountOne) {
  EXPECT_EQ(logical_loc(*parse_statement("x = 1;")), 1u);
  EXPECT_EQ(logical_loc(*parse_statement("return x;")), 1u);
  EXPECT_EQ(logical_loc(*parse_statement("int a, b;")), 1u);
}

TEST(LogicalLoc, CompoundIsFree) {
  EXPECT_EQ(logical_loc(*parse_statement("{ x = 1; y = 2; }")), 2u);
  EXPECT_EQ(logical_loc(*parse_statement("{ }")), 0u);
}

TEST(LogicalLoc, ControlFlowCounts) {
  EXPECT_EQ(logical_loc(*parse_statement("if (a) x = 1; else x = 2;")), 3u);
  EXPECT_EQ(logical_loc(*parse_statement("for (i = 0; i < n; i++) x += i;")), 2u);
  EXPECT_EQ(logical_loc(*parse_statement("while (a) { x = 1; y = 2; }")), 3u);
  EXPECT_EQ(logical_loc(*parse_statement("do x--; while (x);")), 3u);
}

TEST(LogicalLoc, FunctionAddsSignatureLine) {
  const auto tu = parse("void f(void) { x = 1; y = 2; }");
  EXPECT_EQ(logical_loc(static_cast<const FunctionDecl&>(*tu.items[0])), 3u);
}

TEST(LogicalLoc, TranslationUnitCountsDirectivesAndGlobals) {
  const auto tu = parse(
      "#include <stdio.h>\n#define N 4\ndouble A[N];\nint x, y;\n"
      "void f(void) { x = 1; }\n");
  // include(1) + define(1) + A(1) + x,y(2) + f(2) = 7
  EXPECT_EQ(logical_loc(tu), 7u);
}

TEST(LogicalLoc, PragmasCount) {
  const auto tu = parse(
      "void f(int n) {\n  int i;\n  #pragma omp parallel for\n"
      "  for (i = 0; i < n; i++)\n    g(i);\n}\n");
  // signature + decl + pragma + for + call = 5
  EXPECT_EQ(logical_loc(tu), 5u);
}

}  // namespace
}  // namespace socrates::ir
