// Tests for the stage supervisor: retry/timeout/backoff policy,
// failure classification, and the determinism of the jittered backoff
// schedule.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/chaos.hpp"
#include "support/error.hpp"
#include "support/supervisor.hpp"

namespace socrates {
namespace {

/// A supervisor whose backoff sleeps are recorded, not slept.
class RecordingSupervisor {
 public:
  explicit RecordingSupervisor(SupervisorPolicy policy) : supervisor_(policy) {
    supervisor_.set_sleeper([this](double s) { sleeps_.push_back(s); });
  }
  Supervisor& get() { return supervisor_; }
  const std::vector<double>& sleeps() const { return sleeps_; }

 private:
  Supervisor supervisor_;
  std::vector<double> sleeps_;
};

TEST(Supervisor, FirstAttemptSuccessIsClean) {
  Supervisor supervisor;
  int calls = 0;
  const auto report = supervisor.run("stage", [&] { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_FALSE(report.retried());
  EXPECT_FALSE(report.timed_out);
  EXPECT_TRUE(report.last_error.empty());
}

TEST(Supervisor, TransientFailuresAreRetriedUntilSuccess) {
  SupervisorPolicy policy;
  policy.max_attempts = 4;
  Supervisor supervisor(policy);
  int calls = 0;
  const auto report = supervisor.run("flaky", [&] {
    if (++calls < 3) throw Error("transient I/O hiccup");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 3u);
  EXPECT_TRUE(report.retried());
}

TEST(Supervisor, ChaosFaultIsTransient) {
  SupervisorPolicy policy;
  policy.max_attempts = 2;
  Supervisor supervisor(policy);
  int calls = 0;
  const auto report = supervisor.run("chaotic", [&] {
    if (++calls == 1) throw ChaosFault("injected");
  });
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2u);
}

TEST(Supervisor, PermanentFailureIsNeverRetried) {
  SupervisorPolicy policy;
  policy.max_attempts = 5;
  Supervisor supervisor(policy);
  int calls = 0;
  EXPECT_THROW(supervisor.run("buggy",
                              [&] {
                                ++calls;
                                throw ContractViolation("caller bug");
                              }),
               ContractViolation);
  EXPECT_EQ(calls, 1);  // retrying a logic error cannot help

  calls = 0;
  EXPECT_THROW(supervisor.run("buggy2",
                              [&] {
                                ++calls;
                                throw std::logic_error("also a bug");
                              }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

TEST(Supervisor, ExhaustionRethrowsTheLastTransientError) {
  SupervisorPolicy policy;
  policy.max_attempts = 3;
  Supervisor supervisor(policy);
  int calls = 0;
  try {
    supervisor.run("doomed", [&] {
      ++calls;
      throw Error("failure #" + std::to_string(calls));
    });
    FAIL() << "run() must rethrow on exhaustion";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "failure #3");
  }
  EXPECT_EQ(calls, 3);
}

TEST(Supervisor, RunOrReportAbsorbsExhaustionForFallbacks) {
  SupervisorPolicy policy;
  policy.max_attempts = 2;
  Supervisor supervisor(policy);
  const auto report =
      supervisor.run_or_report("degradable", [] { throw Error("still down"); });
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.last_error, "still down");
}

TEST(Supervisor, RunOrReportCanAbsorbPermanentFailures) {
  Supervisor supervisor;
  const auto report = supervisor.run_or_report(
      "tolerated", [] { throw std::logic_error("bug"); }, /*absorb_permanent=*/true);
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.attempts, 1u);  // still not retried
  EXPECT_EQ(report.last_error, "bug");
}

TEST(Supervisor, CustomClassifierOverridesTheDefault) {
  SupervisorPolicy policy;
  policy.max_attempts = 3;
  Supervisor supervisor(policy);
  // Treat every failure as permanent: no retries at all.
  supervisor.set_classifier(
      [](const std::exception&) { return FailureKind::kPermanent; });
  int calls = 0;
  EXPECT_THROW(supervisor.run("strict",
                              [&] {
                                ++calls;
                                throw Error("anything");
                              }),
               Error);
  EXPECT_EQ(calls, 1);
}

TEST(Supervisor, LateSuccessIsATimeoutAndRetries) {
  SupervisorPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_deadline_s = 0.005;
  Supervisor supervisor(policy);
  int calls = 0;
  const auto report = supervisor.run("wedged", [&] {
    // First attempt "hangs" past the watchdog deadline; the retry is
    // instant and wins.
    if (++calls == 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
  });
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(report.succeeded);
  EXPECT_TRUE(report.timed_out);
  EXPECT_EQ(report.attempts, 2u);
}

TEST(Supervisor, BackoffGrowsExponentiallyAndIsCapped) {
  SupervisorPolicy policy;
  policy.base_backoff_s = 0.010;
  policy.max_backoff_s = 0.050;
  policy.jitter = 0.0;  // pure exponential for this test
  Supervisor supervisor(policy);
  EXPECT_DOUBLE_EQ(supervisor.backoff_s("s", 1), 0.010);
  EXPECT_DOUBLE_EQ(supervisor.backoff_s("s", 2), 0.020);
  EXPECT_DOUBLE_EQ(supervisor.backoff_s("s", 3), 0.040);
  EXPECT_DOUBLE_EQ(supervisor.backoff_s("s", 4), 0.050);  // ceiling
  EXPECT_DOUBLE_EQ(supervisor.backoff_s("s", 20), 0.050);
}

TEST(Supervisor, JitteredBackoffIsDeterministicPerStageAndAttempt) {
  SupervisorPolicy policy;
  policy.base_backoff_s = 0.010;
  policy.max_backoff_s = 1.0;
  policy.jitter = 0.5;
  policy.seed = 42;
  Supervisor a(policy);
  Supervisor b(policy);
  for (std::size_t attempt = 1; attempt <= 5; ++attempt) {
    const double backoff = a.backoff_s("Dse", attempt);
    // Identical across supervisor instances (pure in seed/stage/attempt).
    EXPECT_DOUBLE_EQ(backoff, b.backoff_s("Dse", attempt));
    // Inside the jitter window [0.5, 1.0] x exponential.
    const double exponential =
        std::min(0.010 * static_cast<double>(1u << (attempt - 1)), 1.0);
    EXPECT_GE(backoff, 0.5 * exponential);
    EXPECT_LE(backoff, exponential);
  }
  // Different stages draw from different streams.
  EXPECT_NE(a.backoff_s("Dse", 1), a.backoff_s("Parse", 1));

  SupervisorPolicy reseeded = policy;
  reseeded.seed = 43;
  Supervisor c(reseeded);
  EXPECT_NE(a.backoff_s("Dse", 1), c.backoff_s("Dse", 1));
}

TEST(Supervisor, BackoffSleepsAreTakenBetweenRetries) {
  SupervisorPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_s = 0.010;
  policy.jitter = 0.0;
  RecordingSupervisor recording(policy);
  const auto report =
      recording.get().run_or_report("down", [] { throw Error("down"); });
  EXPECT_FALSE(report.succeeded);
  ASSERT_EQ(recording.sleeps().size(), 2u);  // between 1->2 and 2->3
  EXPECT_DOUBLE_EQ(recording.sleeps()[0], 0.010);
  EXPECT_DOUBLE_EQ(recording.sleeps()[1], 0.020);
  EXPECT_DOUBLE_EQ(report.backoff_total_s, 0.030);
}

TEST(Supervisor, PolicyIsValidated) {
  SupervisorPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_THROW(Supervisor{zero_attempts}, ContractViolation);

  SupervisorPolicy bad_jitter;
  bad_jitter.jitter = 1.5;
  EXPECT_THROW(Supervisor{bad_jitter}, ContractViolation);
}

}  // namespace
}  // namespace socrates
