// Tests for feature-based model-parameter estimation and the
// arbitrary-source toolchain path.
#include <gtest/gtest.h>

#include "cobayn/corpus.hpp"
#include "features/params_from_features.hpp"
#include "ir/parser.hpp"
#include "kernels/registry.hpp"
#include "margot/context.hpp"
#include "kernels/sources.hpp"
#include "socrates/toolchain.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

features::FeatureVector features_of_benchmark(const char* name) {
  const auto tu = ir::parse(kernels::benchmark_source(name));
  return features::extract_kernel_features(tu).front().second;
}

TEST(ParamEstimation, AllFieldsInValidRanges) {
  for (const auto& b : kernels::all_benchmarks()) {
    const auto fv = features_of_benchmark(b.name.c_str());
    const auto p = features::estimate_model_params(fv, b.name, 5.0);
    EXPECT_EQ(p.name, b.name);
    EXPECT_EQ(p.seq_work_s, 5.0);
    EXPECT_GE(p.parallel_fraction, 0.3);
    EXPECT_LE(p.parallel_fraction, 1.0);
    for (const double v : {p.mem_intensity, p.unroll_affinity,
                           p.vectorization_affinity, p.fp_ratio, p.branchiness,
                           p.call_density, p.icache_sensitivity, p.ivopt_sensitivity,
                           p.loop_opt_sensitivity}) {
      EXPECT_GE(v, 0.0) << b.name;
      EXPECT_LE(v, 1.0) << b.name;
    }
  }
}

TEST(ParamEstimation, QualitativeOrderingsMatchCalibration) {
  // The estimator must reproduce the *directions* of the hand
  // calibration: nussinov branchier and more call-dense than 2mm;
  // matvec kernels more memory-bound than matmuls; kernels without
  // OpenMP pragmas get a low parallel fraction.
  const auto p2mm =
      features::estimate_model_params(features_of_benchmark("2mm"), "2mm", 5.0);
  const auto pnuss = features::estimate_model_params(features_of_benchmark("nussinov"),
                                                     "nussinov", 5.0);
  const auto pmvt =
      features::estimate_model_params(features_of_benchmark("mvt"), "mvt", 5.0);

  EXPECT_GT(pnuss.branchiness, p2mm.branchiness);
  EXPECT_GT(pnuss.call_density, p2mm.call_density);
  EXPECT_GT(pmvt.mem_intensity, p2mm.mem_intensity);
  EXPECT_LT(pnuss.vectorization_affinity, p2mm.vectorization_affinity);

  const auto serial = features::estimate_model_params(
      [] {
        const auto tu = ir::parse(
            "void kernel_s(int n) { int i; for (i = 0; i < n; i++) g(i); }\n"
            "int main(void) { kernel_s(4); return 0; }");
        return features::extract_kernel_features(tu).front().second;
      }(),
      "serial", 1.0);
  EXPECT_LT(serial.parallel_fraction, 0.5);
}

TEST(ParamEstimation, RejectsNonPositiveWork) {
  const auto fv = features_of_benchmark("2mm");
  EXPECT_THROW(features::estimate_model_params(fv, "x", 0.0), ContractViolation);
}

TEST(BuildFromSource, WholePipelineOnArbitraryCode) {
  // A synthetic kernel the toolchain has never seen.
  cobayn::SyntheticSpec spec;
  spec.name = "userapp";
  spec.loop_nests = 2;
  spec.nest_depth = 2;
  spec.body_ops = 3;
  spec.memory_heavy = true;
  const std::string source = cobayn::generate_source(spec);

  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 2;
  Toolchain tc(model, opts);
  const auto binary = tc.build_from_source("userapp", source, 2.0);

  EXPECT_EQ(binary.benchmark, "userapp");
  EXPECT_EQ(binary.profile.size(), 512u);
  EXPECT_EQ(binary.woven.kernels.size(), 1u);
  EXPECT_EQ(binary.woven.kernels[0].kernel_name, "kernel_userapp");
  EXPECT_EQ(binary.knowledge.size(), 512u);
  // The AS-RTM can decide on it immediately.
  margot::Asrtm asrtm(binary.knowledge);
  asrtm.set_rank(margot::Rank::minimize_exec_time(margot::ContextMetrics::kExecTime));
  EXPECT_NO_THROW(asrtm.find_best_operating_point());
}

TEST(BuildFromSource, RequiresAKernelFunction) {
  const auto model = platform::PerformanceModel::paper_platform();
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  Toolchain tc(model, opts);
  EXPECT_THROW(tc.build_from_source("bad", "int main(void) { return 0; }"),
               ContractViolation);
}

}  // namespace
}  // namespace socrates
