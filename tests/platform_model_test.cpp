// Property tests for the compiler-effect and performance/power models.
// These pin down the trade-off shapes the paper's figures rely on.
#include <gtest/gtest.h>

#include "kernels/registry.hpp"
#include "platform/compiler_model.hpp"
#include "platform/perf_model.hpp"
#include "support/error.hpp"

namespace socrates::platform {
namespace {

const PerformanceModel& model() {
  static const PerformanceModel kModel = PerformanceModel::paper_platform();
  return kModel;
}

KernelModelParams kernel(const char* name) {
  return kernels::find_benchmark(name).model;
}

Measurement eval(const KernelModelParams& k, const FlagConfig& f, std::size_t threads,
                 BindingPolicy b) {
  return model().evaluate(k, Configuration{f, threads, b});
}

// ---- compiler model -----------------------------------------------------------

TEST(CompilerModel, O2IsTheBaseline) {
  for (const auto& b : kernels::all_benchmarks())
    EXPECT_DOUBLE_EQ(compute_speedup(b.model, FlagConfig(OptLevel::kO2)), 1.0) << b.name;
}

TEST(CompilerModel, OsSlowerThanO2) {
  for (const auto& b : kernels::all_benchmarks())
    EXPECT_LT(compute_speedup(b.model, FlagConfig(OptLevel::kOs)), 1.0) << b.name;
}

TEST(CompilerModel, O3HelpsVectorizableKernels) {
  EXPECT_GT(compute_speedup(kernel("2mm"), FlagConfig(OptLevel::kO3)), 1.05);
  // nussinov is branchy and barely vectorizes: O3 gain is marginal.
  EXPECT_LT(compute_speedup(kernel("nussinov"), FlagConfig(OptLevel::kO3)), 1.02);
}

TEST(CompilerModel, NoInlineHurtsCallDenseKernels) {
  const FlagConfig no_inline = FlagConfig(OptLevel::kO2).with(Flag::kNoInline);
  EXPECT_LT(compute_speedup(kernel("nussinov"), no_inline), 1.0);
  // 2mm has no calls in the hot loop: no-inline is nearly free.
  EXPECT_GT(compute_speedup(kernel("2mm"), no_inline), 0.99);
}

TEST(CompilerModel, UnrollHelpsTightNests) {
  const FlagConfig unroll = FlagConfig(OptLevel::kO2).with(Flag::kUnrollAllLoops);
  EXPECT_GT(compute_speedup(kernel("2mm"), unroll), 1.0);
}

TEST(CompilerModel, DifferentKernelsPreferDifferentConfigs) {
  // The premise of the whole paper: no one-fits-all configuration.
  std::size_t distinct_best = 0;
  std::vector<std::string> bests;
  for (const auto& b : kernels::all_benchmarks()) {
    double best_speedup = 0.0;
    std::string best_name;
    for (const auto& named : reduced_design_space()) {
      const double s = compute_speedup(b.model, named.config);
      if (s > best_speedup) {
        best_speedup = s;
        best_name = named.name;
      }
    }
    bests.push_back(best_name);
  }
  std::sort(bests.begin(), bests.end());
  distinct_best = std::unique(bests.begin(), bests.end()) - bests.begin();
  EXPECT_GE(distinct_best, 2u);
}

TEST(CompilerModel, PowerFactorWithinBounds) {
  for (const auto& b : kernels::all_benchmarks()) {
    for (const auto& f : cobayn_search_space()) {
      const double p = core_power_factor(b.model, f);
      EXPECT_GE(p, 0.85);
      EXPECT_LE(p, 1.20);
    }
  }
}

// ---- performance model ------------------------------------------------------------

TEST(PerfModel, DeterministicWithoutNoise) {
  const auto a = eval(kernel("2mm"), FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose);
  const auto b = eval(kernel("2mm"), FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose);
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
}

TEST(PerfModel, SingleThreadMatchesSeqWorkScale) {
  // At 1 thread / O2, time ~= seq_work (turbo makes it a bit faster).
  const auto m = eval(kernel("2mm"), FlagConfig(OptLevel::kO2), 1, BindingPolicy::kClose);
  EXPECT_GT(m.exec_time_s, kernel("2mm").seq_work_s * 0.6);
  EXPECT_LT(m.exec_time_s, kernel("2mm").seq_work_s * 1.1);
}

class ThreadsMonotone : public ::testing::TestWithParam<std::string> {};

TEST_P(ThreadsMonotone, MoreThreadsNeverSlowerMuch) {
  // Execution time is non-increasing in thread count up to roofline
  // saturation; allow a 2% slack for turbo-frequency effects.
  const auto k = kernel(GetParam().c_str());
  for (const auto binding : {BindingPolicy::kClose, BindingPolicy::kSpread}) {
    double prev = 1e100;
    for (std::size_t t = 1; t <= 32; ++t) {
      const auto m = eval(k, FlagConfig(OptLevel::kO2), t, binding);
      EXPECT_LT(m.exec_time_s, prev * 1.02)
          << GetParam() << " threads=" << t << " " << to_string(binding);
      prev = m.exec_time_s;
    }
  }
}

TEST_P(ThreadsMonotone, PowerIncreasesWithThreads) {
  // Amdahl-limited kernels (seidel-2d) spend most wall time in the
  // serial phase even at 32 threads, so the requirement is strictly
  // increasing power, with a 1.5x bar only for scalable kernels.
  const auto k = kernel(GetParam().c_str());
  const auto p1 = eval(k, FlagConfig(OptLevel::kO2), 1, BindingPolicy::kClose);
  const auto p32 = eval(k, FlagConfig(OptLevel::kO2), 32, BindingPolicy::kClose);
  EXPECT_GT(p32.avg_power_w, p1.avg_power_w * 1.05);
  if (k.parallel_fraction > 0.9) EXPECT_GT(p32.avg_power_w, p1.avg_power_w * 1.5);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ThreadsMonotone,
                         ::testing::Values("2mm", "atax", "jacobi-2d", "nussinov",
                                           "seidel-2d", "syrk"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(PerfModel, MemoryBoundKernelPrefersSpreadAtMidThreads) {
  // gemver is bandwidth bound: at 8 threads, spread sees both memory
  // controllers while close saturates one socket.
  const auto k = kernel("gemver");
  const auto close8 = eval(k, FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose);
  const auto spread8 = eval(k, FlagConfig(OptLevel::kO2), 8, BindingPolicy::kSpread);
  EXPECT_LT(spread8.exec_time_s, close8.exec_time_s);
}

TEST(PerfModel, CloseOnFewThreadsDrawsLessPower) {
  // One parked socket saves uncore power.
  const auto k = kernel("2mm");
  const auto close4 = eval(k, FlagConfig(OptLevel::kO2), 4, BindingPolicy::kClose);
  const auto spread4 = eval(k, FlagConfig(OptLevel::kO2), 4, BindingPolicy::kSpread);
  EXPECT_LT(close4.avg_power_w, spread4.avg_power_w);
}

TEST(PerfModel, ComputeBoundKernelScalesFurther) {
  const auto k2mm = kernel("2mm");     // beta = 0.25
  const auto katax = kernel("atax");   // beta = 0.72
  const auto s2mm = eval(k2mm, FlagConfig(OptLevel::kO2), 1, BindingPolicy::kClose)
                        .exec_time_s /
                    eval(k2mm, FlagConfig(OptLevel::kO2), 16, BindingPolicy::kClose)
                        .exec_time_s;
  const auto satax = eval(katax, FlagConfig(OptLevel::kO2), 1, BindingPolicy::kClose)
                         .exec_time_s /
                     eval(katax, FlagConfig(OptLevel::kO2), 16, BindingPolicy::kClose)
                         .exec_time_s;
  EXPECT_GT(s2mm, satax);
  EXPECT_LT(satax, 5.0);  // bandwidth wall
}

TEST(PerfModel, SeidelIsAmdahlLimited) {
  const auto k = kernel("seidel-2d");  // parallel fraction 0.4
  const auto t1 = eval(k, FlagConfig(OptLevel::kO2), 1, BindingPolicy::kClose);
  const auto t32 = eval(k, FlagConfig(OptLevel::kO2), 32, BindingPolicy::kClose);
  EXPECT_LT(t1.exec_time_s / t32.exec_time_s, 1.8);
}

TEST(PerfModel, PowerWithinPlatformEnvelope) {
  for (const auto& b : kernels::all_benchmarks()) {
    for (const std::size_t t : {1u, 8u, 16u, 32u}) {
      for (const auto binding : {BindingPolicy::kClose, BindingPolicy::kSpread}) {
        const auto m = eval(b.model, FlagConfig(OptLevel::kO3), t, binding);
        EXPECT_GT(m.avg_power_w, 40.0) << b.name;
        EXPECT_LT(m.avg_power_w, 180.0) << b.name;
      }
    }
  }
}

TEST(PerfModel, EnergyIsTimeTimesPower) {
  const auto m = eval(kernel("syrk"), FlagConfig(OptLevel::kO3), 12, BindingPolicy::kSpread);
  EXPECT_NEAR(m.energy_j, m.exec_time_s * m.avg_power_w, 1e-9);
}

TEST(PerfModel, WorkScaleShrinksTimeSuperlinearly) {
  // A tenth of the dataset runs *more* than ten times faster: the
  // smaller working set is partially cache resident, so the memory
  // share of the run shrinks too (locality term of the model).
  const auto k = kernel("2mm");
  const Configuration c{FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose};
  const auto full = model().evaluate(k, c, nullptr, 1.0);
  const auto tenth = model().evaluate(k, c, nullptr, 0.1);
  EXPECT_GT(full.exec_time_s / tenth.exec_time_s, 10.0);
  EXPECT_LT(full.exec_time_s / tenth.exec_time_s, 14.0);
}

TEST(PerfModel, SmallerDatasetIsLessMemoryBound) {
  // gemver is bandwidth bound at full size; at 1% size it should scale
  // further with threads (the bandwidth wall moved up).
  const auto k = kernel("gemver");
  const auto speedup_at = [&](double scale) {
    const auto t1 = model().evaluate(
        k, Configuration{FlagConfig(OptLevel::kO2), 1, BindingPolicy::kClose}, nullptr,
        scale);
    const auto t16 = model().evaluate(
        k, Configuration{FlagConfig(OptLevel::kO2), 16, BindingPolicy::kClose}, nullptr,
        scale);
    return t1.exec_time_s / t16.exec_time_s;
  };
  EXPECT_GT(speedup_at(0.01), speedup_at(1.0) * 1.10);
}

TEST(PerfModel, NoiseIsBoundedAndReproducible) {
  Rng noise1(5);
  Rng noise2(5);
  const auto k = kernel("mvt");
  const Configuration c{FlagConfig(OptLevel::kO2), 4, BindingPolicy::kClose};
  const auto base = model().evaluate(k, c);
  for (int i = 0; i < 50; ++i) {
    const auto a = model().evaluate(k, c, &noise1);
    const auto b = model().evaluate(k, c, &noise2);
    EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
    EXPECT_NEAR(a.exec_time_s, base.exec_time_s, base.exec_time_s * 0.15);
  }
}

TEST(PerfModel, RejectsBadConfigurations) {
  const auto k = kernel("2mm");
  EXPECT_THROW(
      model().evaluate(k, Configuration{FlagConfig(OptLevel::kO2), 0,
                                        BindingPolicy::kClose}),
      ContractViolation);
  EXPECT_THROW(
      model().evaluate(k, Configuration{FlagConfig(OptLevel::kO2), 64,
                                        BindingPolicy::kClose}),
      ContractViolation);
}

}  // namespace
}  // namespace socrates::platform
