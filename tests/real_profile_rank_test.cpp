// Tests for real-execution profiling and the extended rank forms
// (linear composition, energy and EDP factories).
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/registry.hpp"
#include "margot/asrtm.hpp"
#include "socrates/real_profile.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

TEST(RealProfile, MeasuresRealWallTime) {
  const auto m = profile_real_kernel("mvt", 64, 3);
  EXPECT_EQ(m.benchmark, "mvt");
  EXPECT_EQ(m.repetitions, 3u);
  EXPECT_GT(m.exec_time_mean_s, 0.0);
  EXPECT_GE(m.exec_time_mean_s, m.exec_time_min_s);
  EXPECT_TRUE(std::isfinite(m.checksum));
}

TEST(RealProfile, LargerProblemTakesLonger) {
  const auto small = profile_real_kernel("2mm", 32, 3);
  const auto large = profile_real_kernel("2mm", 128, 3);
  EXPECT_GT(large.exec_time_mean_s, small.exec_time_mean_s);
}

TEST(RealProfile, EnergyBackendIsReported) {
  const auto m = profile_real_kernel("syrk", 48, 2);
  EXPECT_TRUE(m.energy_backend == "rapl-sysfs" || m.energy_backend == "simulated");
  if (!m.energy_available) {
    EXPECT_EQ(m.energy_mean_j, 0.0);  // never fabricate Joules
    EXPECT_EQ(m.avg_power_w, 0.0);
  } else {
    EXPECT_GT(m.energy_mean_j, 0.0);
  }
}

TEST(RealProfile, RejectsBadArguments) {
  EXPECT_THROW(profile_real_kernel("nope", 32, 2), ContractViolation);
  EXPECT_THROW(profile_real_kernel("2mm", 32, 0), ContractViolation);
}

// ---- extended ranks -----------------------------------------------------------

margot::KnowledgeBase kb3() {
  margot::KnowledgeBase kb({"k"}, {"exec_time_s", "power_w", "throughput"});
  // energy: 10*50=500, 4*80=320, 1*140=140  -> op2 wins min-energy
  // EDP:    100*50=5000, 16*80=1280, 1*140=140 -> op2 wins min-EDP too,
  // but with op2 made slower the orders diverge (see tests).
  kb.add(margot::OperatingPoint{{0}, {{10.0, 0.0}, {50.0, 0.0}, {0.1, 0.0}}});
  kb.add(margot::OperatingPoint{{1}, {{4.0, 0.0}, {80.0, 0.0}, {0.25, 0.0}}});
  kb.add(margot::OperatingPoint{{2}, {{1.0, 0.0}, {140.0, 0.0}, {1.0, 0.0}}});
  return kb;
}

TEST(Rank, MinimizeEnergySelectsLowestJoules) {
  margot::Asrtm asrtm(kb3());
  asrtm.set_rank(margot::Rank::minimize_energy(0, 1));
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);  // 140 J
}

TEST(Rank, EnergyVsEdpCanDisagree) {
  margot::KnowledgeBase kb({"k"}, {"exec_time_s", "power_w", "throughput"});
  // op0: E = 2*60 = 120 J, EDP = 240 ; op1: E = 1*130 = 130 J, EDP = 130.
  kb.add(margot::OperatingPoint{{0}, {{2.0, 0.0}, {60.0, 0.0}, {0.5, 0.0}}});
  kb.add(margot::OperatingPoint{{1}, {{1.0, 0.0}, {130.0, 0.0}, {1.0, 0.0}}});
  margot::Asrtm asrtm(kb);
  asrtm.set_rank(margot::Rank::minimize_energy(0, 1));
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  asrtm.set_rank(margot::Rank::minimize_energy_delay(0, 1));
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
}

TEST(Rank, LinearCompositionIsWeightedSum) {
  const auto kb = kb3();
  const auto rank = margot::Rank::linear(margot::RankDirection::kMinimize,
                                         {{0, 10.0}, {1, 1.0}});
  // op0: 10*10+50 = 150; op1: 40+80 = 120; op2: 10+140 = 150.
  EXPECT_DOUBLE_EQ(rank.evaluate(kb[0]), 150.0);
  EXPECT_DOUBLE_EQ(rank.evaluate(kb[1]), 120.0);
  margot::Asrtm asrtm(kb);
  asrtm.set_rank(rank);
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
}

TEST(Rank, LinearToleratesZeroAndNegativeMetrics) {
  margot::KnowledgeBase kb({"k"}, {"m"});
  kb.add(margot::OperatingPoint{{0}, {{0.0, 0.0}}});
  const auto rank = margot::Rank::linear(margot::RankDirection::kMinimize, {{0, 2.0}});
  EXPECT_DOUBLE_EQ(rank.evaluate(kb[0]), 0.0);  // geometric would throw
}

TEST(Rank, GeometricStillRejectsNonPositive) {
  margot::KnowledgeBase kb({"k"}, {"m"});
  kb.add(margot::OperatingPoint{{0}, {{0.0, 0.0}}});
  const margot::Rank rank{margot::RankDirection::kMinimize, {{0, 1.0}}};
  EXPECT_THROW(rank.evaluate(kb[0]), ContractViolation);
}

}  // namespace
}  // namespace socrates
