// Crash-point torture harness for CheckpointStore (CrashMonkey-style,
// in-process).  For every write boundary the store crosses —
//
//   journal-append     torn mid-batch append (half the bytes land)
//   journal-flush      death just after a committed batch
//   snapshot-header    torn tmp snapshot, header half-written
//   snapshot-body      torn tmp snapshot, payload half-written
//   snapshot-rename    complete tmp, never published
//   journal-truncate   snapshot published, old-epoch journal left behind
//
// × the first 3 occurrences each, the harness injects a simulated
// process death via SOCRATES_CHAOS `crash-at=<site>:<n>`, restores
// from whatever survived on disk, and asserts the durability contract:
//
//   1. the restore NEVER lands on the fresh-start rung — some prefix
//      of the learned state always survives;
//   2. the restored state is bit-exact equal to a reference run that
//      saw exactly the first k events, for some k with
//      applied - k <= group_commit (loss bounded by one uncommitted
//      batch);
//   3. the epoch never moves backwards across the crash, and advances
//      strictly once the resumed run checkpoints;
//   4. no stale tmp snapshot survives the restart sweep.
//
// Every event in the workload changes an EWMA correction with a
// distinct value, so distinct prefixes have distinct fingerprints and
// k is uniquely identified.  The enumeration is the `crash-smoke`
// CTest preset's payload (ASan + fixed seed).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "margot/asrtm.hpp"
#include "margot/checkpoint.hpp"
#include "support/chaos.hpp"

namespace socrates::margot {
namespace {

namespace fs = std::filesystem;

KnowledgeBase make_kb(std::size_t points = 4) {
  KnowledgeBase kb({"threads"}, {"exec_time_s", "power_w"});
  for (std::size_t i = 0; i < points; ++i) {
    OperatingPoint op;
    op.knobs = {static_cast<int>(i + 1)};
    op.metrics = {{1.0 + 0.1 * static_cast<double>(i), 0.01},
                  {50.0 + static_cast<double>(i), 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

/// Event i of the deterministic workload.  Each event feeds back a
/// value no other event uses, so every prefix of the stream produces a
/// unique (correction(0), correction(1)) pair — the fingerprint below
/// identifies exactly how many events survived a crash.
void apply_event(Asrtm& asrtm, int i) {
  const std::size_t op = static_cast<std::size_t>(i) % 4;
  if (i % 2 == 0)
    asrtm.send_feedback(op, 0, 1.0 + 0.013 * static_cast<double>(i + 1));
  else
    asrtm.send_feedback(op, 1, 48.0 + 0.7 * static_cast<double>(i + 1));
}

/// The learned state, exactly.  Doubles print at max_digits10 so the
/// comparison is bit-exact round-trip equality, not approximation.
std::string fingerprint(const Asrtm& asrtm) {
  std::ostringstream os;
  os << std::setprecision(17) << asrtm.correction(0) << '|' << asrtm.correction(1)
     << '|' << asrtm.quarantined_count() << '|' << asrtm.quarantine_events();
  return os.str();
}

constexpr const char* kSites[] = {
    "journal-append",  "journal-flush",   "snapshot-header",
    "snapshot-body",   "snapshot-rename", "journal-truncate",
};

class CheckpointCrashTortureTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  void SetUp() override {
    ChaosEngine::global().disarm();
    dir_ = fs::temp_directory_path() /
           ("socrates_crash." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "asrtm.ckpt").string();
  }
  void TearDown() override {
    ChaosEngine::global().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  std::string path_;
};

TEST_P(CheckpointCrashTortureTest, LossIsBoundedAndEpochMonotone) {
  const auto& [site, occurrence] = GetParam();

  // Small capacities so every boundary fires several times within a
  // short workload: a group commit every 2 events, a snapshot every 5.
  CheckpointStore::Options options;
  options.journal_capacity = 5;
  options.group_commit = 2;
  options.generations = 2;

  ChaosSpec spec;
  spec.crash_site = site;
  spec.crash_after = static_cast<std::uint64_t>(occurrence);
  spec.seed = 1234;  // fixed seed: the crash-smoke run is reproducible
  ChaosEngine::global().install(spec);

  // ---- phase 1: run until the injected death -------------------------------
  constexpr int kMaxEvents = 64;
  int applied = 0;
  std::uint64_t published_epoch = 0;
  std::vector<std::string> prefix_fp;  // fingerprint after each prefix
  Asrtm live(make_kb());
  prefix_fp.push_back(fingerprint(live));  // prefix of 0 events
  {
    CheckpointStore store(path_, options);
    store.attach(live);
    for (int i = 0; i < kMaxEvents && !store.crashed(); ++i) {
      apply_event(live, i);
      ++applied;
      prefix_fp.push_back(fingerprint(live));
    }
    ASSERT_TRUE(store.crashed())
        << "site " << site << " occurrence " << occurrence
        << " never fired within " << kMaxEvents << " events";
    published_epoch = store.epoch();
  }
  ChaosEngine::global().disarm();

  // ---- phase 2: restore from the surviving files ---------------------------
  Asrtm restored(make_kb());
  CheckpointStore store(path_, options);
  CheckpointStore::RestoreResult result;
  ASSERT_NO_THROW(result = store.attach(restored)) << "site " << site;

  // (1) Never a silent total loss.
  EXPECT_NE(result.rung, RecoveryRung::kFreshStart)
      << "rung " << to_string(result.rung) << ": " << result.note;

  // (4) The restart swept every stale tmp snapshot.
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_EQ(entry.path().filename().string().find(".tmp."), std::string::npos)
        << "stale tmp survived the sweep: " << entry.path();

  // (2) The surviving state is a bit-exact prefix of the applied
  // events, missing at most one uncommitted batch.
  const std::string got = fingerprint(restored);
  int survived = -1;
  for (int k = applied; k >= 0; --k) {
    if (prefix_fp[static_cast<std::size_t>(k)] == got) {
      survived = k;
      break;
    }
  }
  ASSERT_GE(survived, 0) << "restored state is not a prefix of the applied "
                            "events (corruption, not truncation): "
                         << result.note;
  EXPECT_LE(applied - survived, static_cast<int>(options.group_commit))
      << "lost " << (applied - survived)
      << " events; the contract allows at most one uncommitted batch ("
      << options.group_commit << ") — " << result.note;

  // (3) Epoch monotone across the crash, strictly advancing afterwards.
  EXPECT_GE(store.epoch(), published_epoch) << result.note;
  const std::uint64_t resumed_epoch = store.epoch();
  apply_event(restored, 1000);
  store.checkpoint();
  EXPECT_GT(store.epoch(), resumed_epoch);
  EXPECT_GE(store.epoch(), published_epoch + 1);
  EXPECT_FALSE(store.degraded()) << "a crash site must not poison disk health";
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
  std::string name = std::get<0>(info.param);
  for (auto& c : name)
    if (c == '-') c = '_';
  return name + "_x" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    EveryWriteBoundary, CheckpointCrashTortureTest,
    ::testing::Combine(::testing::ValuesIn(kSites), ::testing::Values(1, 2, 3)),
    case_name);

}  // namespace
}  // namespace socrates::margot
