// Differential and cache-invalidation tests for the incremental AS-RTM
// decision engine.
//
// The incremental engine (epoch cache, per-constraint columns, scratch
// buffers, bounded top-k) must be *bit-identical* to the retained
// brute-force reference (set_decision_cache_enabled(false)): the fuzz
// test drives randomized mutation/decide/feedback sequences through one
// instance per mode and asserts identical chosen indices, feasibility,
// corrections and journal records at every step.  The targeted tests
// pin the invalidation rules one by one: clean epochs are served from
// the cache, correction drift invalidates if and only if it exceeds the
// decision epsilon, quarantine transitions dirty the epoch (and ticks
// without active cooldowns do not), restore always lands dirty with a
// monotonic epoch, and a correction move recomputes only the columns of
// constraints on that metric.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "margot/asrtm.hpp"
#include "observability/metrics.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace socrates::margot {
namespace {

constexpr std::size_t kTime = 0;
constexpr std::size_t kPower = 1;
constexpr std::size_t kThr = 2;

KnowledgeBase random_kb(Rng& rng, std::size_t n) {
  KnowledgeBase kb({"k"}, {"exec_time_s", "power_w", "throughput"});
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.uniform(0.1, 10.0);
    const double p = rng.uniform(45.0, 150.0);
    kb.add(OperatingPoint{{static_cast<int>(i)},
                          {{t, 0.05 * t}, {p, 0.02 * p}, {1.0 / t, 0.01 / t}}});
  }
  return kb;
}

KnowledgeBase fixed_kb() {
  KnowledgeBase kb({"k"}, {"exec_time_s", "power_w", "throughput"});
  kb.add(OperatingPoint{{0}, {{10.0, 0.5}, {50.0, 1.0}, {0.1, 0.005}}});
  kb.add(OperatingPoint{{1}, {{4.0, 0.2}, {80.0, 2.0}, {0.25, 0.0125}}});
  kb.add(OperatingPoint{{2}, {{1.0, 0.05}, {140.0, 3.0}, {1.0, 0.05}}});
  return kb;
}

/// Compares every journal field except the epoch: the reference
/// instance pays one extra epoch bump for set_decision_cache_enabled(
/// false), so epochs run at a constant offset while all decision
/// content must match exactly.
void expect_same_journals(const DecisionJournal& incremental,
                          const DecisionJournal& brute) {
  ASSERT_EQ(incremental.size(), brute.size());
  ASSERT_EQ(incremental.total_decisions(), brute.total_decisions());
  auto it = incremental.records().begin();
  auto jt = brute.records().begin();
  for (; it != incremental.records().end(); ++it, ++jt) {
    EXPECT_EQ(it->sequence, jt->sequence);
    EXPECT_DOUBLE_EQ(it->timestamp_s, jt->timestamp_s);
    EXPECT_EQ(it->trigger, jt->trigger);
    EXPECT_EQ(it->chosen, jt->chosen);
    EXPECT_DOUBLE_EQ(it->chosen_score, jt->chosen_score);
    EXPECT_EQ(it->feasible, jt->feasible);
    ASSERT_EQ(it->rejected.size(), jt->rejected.size());
    for (std::size_t r = 0; r < it->rejected.size(); ++r) {
      EXPECT_EQ(it->rejected[r].op_index, jt->rejected[r].op_index);
      EXPECT_DOUBLE_EQ(it->rejected[r].score, jt->rejected[r].score);
    }
    EXPECT_EQ(it->quarantined, jt->quarantined);
  }
}

class AsrtmIncrementalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsrtmIncrementalFuzz, MatchesBruteForceReference) {
  Rng rng(GetParam());
  const KnowledgeBase kb = random_kb(rng, 24);

  Asrtm fast(kb);
  Asrtm slow(kb);
  slow.set_decision_cache_enabled(false);
  for (Asrtm* a : {&fast, &slow}) {
    a->set_quarantine_options({1, 2, 16});
    a->set_feedback_inertia(0.4);
    a->set_rank(Rank::maximize_throughput_per_watt2(kThr, kPower));
    a->enable_decision_journal(256);
    a->add_constraint({kPower, ComparisonOp::kLessEqual, 120.0, 0, 1.0});
    a->add_constraint({kThr, ComparisonOp::kGreaterEqual, 0.15, 1, 0.0});
    // Strict comparison: exercises the sign/violation mapping of the
    // branchless column pass for kLess as well.
    a->add_constraint({kTime, ComparisonOp::kLess, 9.5, 2, 0.5});
  }
  const std::size_t goal_handle = 0;

  double now = 0.0;
  for (int round = 0; round < 400; ++round) {
    const int op = static_cast<int>(rng.uniform_int(0, 8));
    switch (op) {
      case 0: {
        const double goal = rng.uniform(40.0, 160.0);
        fast.set_constraint_goal(goal_handle, goal);
        slow.set_constraint_goal(goal_handle, goal);
        break;
      }
      case 1: {
        const auto point = rng.uniform_int(0, kb.size() - 1);
        const std::size_t metric = rng.uniform_int(0, 2);
        const double observed =
            kb[point].metrics[metric].mean * rng.uniform(0.7, 1.4);
        fast.send_feedback(point, metric, observed);
        slow.send_feedback(point, metric, observed);
        break;
      }
      case 2: {
        const auto point = rng.uniform_int(0, kb.size() - 1);
        fast.report_variant_failure(point);
        slow.report_variant_failure(point);
        break;
      }
      case 3: {
        const auto point = rng.uniform_int(0, kb.size() - 1);
        fast.report_variant_success(point);
        slow.report_variant_success(point);
        break;
      }
      case 4:
        fast.advance_quarantine();
        slow.advance_quarantine();
        break;
      case 5: {
        now += rng.uniform(0.0, 0.5);
        fast.set_decision_time(now);
        slow.set_decision_time(now);
        break;
      }
      case 6: {
        std::ostringstream note;
        note << "fuzz trigger " << round;
        fast.note_decision_trigger(note.str());
        slow.note_decision_trigger(note.str());
        break;
      }
      default:
        break;  // decide on an untouched epoch (exercises the cache)
    }
    const std::size_t chosen_fast = fast.find_best_operating_point();
    const std::size_t chosen_slow = slow.find_best_operating_point();
    ASSERT_EQ(chosen_fast, chosen_slow) << "round " << round;
    ASSERT_EQ(fast.last_selection_feasible(), slow.last_selection_feasible())
        << "round " << round;
    for (std::size_t m = 0; m < 3; ++m)
      ASSERT_DOUBLE_EQ(fast.correction(m), slow.correction(m));
  }
  EXPECT_GT(fast.decision_journal().total_decisions(), 0u);
  expect_same_journals(fast.decision_journal(), slow.decision_journal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsrtmIncrementalFuzz,
                         ::testing::Values(7, 42, 101, 2024, 31337, 5550123,
                                           987654321));

TEST(AsrtmIncremental, CleanEpochIsCached) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});

  Counter& cached = MetricsRegistry::global().counter("asrtm.decisions_cached");
  const std::uint64_t before = cached.value();
  const std::uint64_t epoch = asrtm.decision_epoch();

  const std::size_t first = asrtm.find_best_operating_point();
  EXPECT_FALSE(asrtm.last_decision_was_cached());
  const std::size_t second = asrtm.find_best_operating_point();
  EXPECT_TRUE(asrtm.last_decision_was_cached());
  EXPECT_EQ(first, second);
  EXPECT_TRUE(asrtm.last_selection_feasible());
  EXPECT_EQ(asrtm.decision_epoch(), epoch);  // queries never dirty
  EXPECT_EQ(cached.value(), before + 1);

  // Any mutation dirties; the next decision recomputes, then re-caches.
  asrtm.set_constraint_goal(0, 60.0);
  EXPECT_GT(asrtm.decision_epoch(), epoch);
  (void)asrtm.find_best_operating_point();
  EXPECT_FALSE(asrtm.last_decision_was_cached());
  (void)asrtm.find_best_operating_point();
  EXPECT_TRUE(asrtm.last_decision_was_cached());
}

TEST(AsrtmIncremental, EpsilonGatesCorrectionInvalidation) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  asrtm.set_feedback_inertia(1.0);
  asrtm.set_decision_epsilon(0.05);
  (void)asrtm.find_best_operating_point();

  // Drift below epsilon: the EWMA moves, the decision does not.
  const std::uint64_t epoch = asrtm.decision_epoch();
  asrtm.send_feedback(1, kPower, 82.0);  // correction 1.025, drift 0.025
  EXPECT_NEAR(asrtm.correction(kPower), 1.025, 1e-12);
  EXPECT_EQ(asrtm.decision_epoch(), epoch);
  (void)asrtm.find_best_operating_point();
  EXPECT_TRUE(asrtm.last_decision_was_cached());

  // Accumulated drift beyond epsilon from the last *applied* value is
  // accepted even though each step was small.
  asrtm.send_feedback(1, kPower, 85.0);  // correction 1.0625, drift 0.0625
  EXPECT_GT(asrtm.decision_epoch(), epoch);
  (void)asrtm.find_best_operating_point();
  EXPECT_FALSE(asrtm.last_decision_was_cached());

  // Well past epsilon in one step: invalidates immediately and the
  // decision visibly moves (op1's 80 W scales past the 100 W cap).
  asrtm.send_feedback(1, kPower, 104.0);
  (void)asrtm.find_best_operating_point();
  EXPECT_FALSE(asrtm.last_decision_was_cached());
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);

  // Epsilon 0 (the default) accepts any drift: bit-exact behaviour.
  asrtm.set_decision_epsilon(0.0);
  (void)asrtm.find_best_operating_point();
  const std::uint64_t exact_epoch = asrtm.decision_epoch();
  asrtm.send_feedback(1, kPower, 80.0 * asrtm.correction(kPower) * 1.0001);
  EXPECT_GT(asrtm.decision_epoch(), exact_epoch);
}

// Pins the boundary semantics documented at set_decision_epsilon():
// drift of *exactly* epsilon counts as beyond the threshold and is
// applied, while the re-sync performed by set_decision_epsilon() itself
// applies any nonzero pending drift unconditionally.
TEST(AsrtmIncremental, EpsilonBoundarySemantics) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  asrtm.set_feedback_inertia(1.0);
  asrtm.set_decision_epsilon(0.5);
  (void)asrtm.find_best_operating_point();

  // op1's power mean is 80 W, so these ratios are exact in double.
  const std::uint64_t e0 = asrtm.decision_epoch();
  asrtm.send_feedback(1, kPower, 120.0);  // correction 1.5, drift exactly 0.5
  EXPECT_GT(asrtm.decision_epoch(), e0) << "drift == epsilon must apply";

  const std::uint64_t e1 = asrtm.decision_epoch();
  asrtm.send_feedback(1, kPower, 100.0);  // correction 1.25, drift 0.25
  EXPECT_EQ(asrtm.decision_epoch(), e1) << "drift < epsilon must defer";
  EXPECT_NEAR(asrtm.correction(kPower), 1.25, 1e-12);

  // Re-setting even the *same* epsilon re-baselines the pending drift.
  asrtm.set_decision_epsilon(0.5);
  EXPECT_GT(asrtm.decision_epoch(), e1) << "set_decision_epsilon must re-sync";

  // After the re-sync the applied value is 1.25: a further 0.25 drift
  // sits below epsilon again.
  const std::uint64_t e2 = asrtm.decision_epoch();
  asrtm.send_feedback(1, kPower, 120.0);  // correction 1.5, drift 0.25
  EXPECT_EQ(asrtm.decision_epoch(), e2);
}

TEST(AsrtmIncremental, ReentrancyGuardTripsOnReentrantDecide) {
#if SOCRATES_ASRTM_REENTRANCY_GUARD
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.set_feedback_inertia(1.0);
  // A sink that re-enters the decision engine while send_feedback still
  // owns the mutable scratch: the debug guard must trip, not corrupt.
  asrtm.set_event_sink([&asrtm](const RuntimeEvent&) {
    (void)asrtm.find_best_operating_point();
  });
  EXPECT_THROW(asrtm.send_feedback(0, kPower, 55.0), ContractViolation);
  // The guard releases on unwind: the engine stays usable afterwards.
  asrtm.set_event_sink(nullptr);
  EXPECT_NO_THROW((void)asrtm.find_best_operating_point());
#else
  GTEST_SKIP() << "reentrancy guard compiled out (NDEBUG without "
                  "SOCRATES_DEBUG_GUARDS)";
#endif
}

TEST(AsrtmIncremental, QuarantineExpiryMidStreamInvalidates) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.set_quarantine_options({1, 2, 16});
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);

  asrtm.report_variant_failure(2);  // quarantined for 2 iterations
  EXPECT_TRUE(asrtm.is_quarantined(2));
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_FALSE(asrtm.last_decision_was_cached());
  (void)asrtm.find_best_operating_point();
  EXPECT_TRUE(asrtm.last_decision_was_cached());

  // Ticks with an active cooldown dirty the epoch (the countdown is a
  // decision input); once every cooldown is spent, ticks are free.
  asrtm.advance_quarantine();
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_FALSE(asrtm.last_decision_was_cached());
  asrtm.advance_quarantine();  // cooldown expires: op2 eligible again
  EXPECT_FALSE(asrtm.is_quarantined(2));
  EXPECT_EQ(asrtm.find_best_operating_point(), 2u);
  EXPECT_FALSE(asrtm.last_decision_was_cached());

  const std::uint64_t epoch = asrtm.decision_epoch();
  asrtm.advance_quarantine();  // nothing cooling: clean tick
  EXPECT_EQ(asrtm.decision_epoch(), epoch);
  (void)asrtm.find_best_operating_point();
  EXPECT_TRUE(asrtm.last_decision_was_cached());
}

TEST(AsrtmIncremental, RestoreResumesWithCoherentEpoch) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  asrtm.set_feedback_inertia(1.0);
  asrtm.send_feedback(1, kPower, 104.0);  // correction 1.3 -> op0 wins
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
  const Asrtm::Snapshot snap = asrtm.snapshot();
  EXPECT_EQ(snap.decision_epoch, asrtm.decision_epoch());

  // A second instance restores the snapshot: its epoch must resume
  // strictly after both histories and the first decision must be a full
  // (uncached) one over the restored corrections.
  Asrtm resumed(fixed_kb());
  resumed.set_rank(Rank::minimize_exec_time(kTime));
  resumed.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  EXPECT_EQ(resumed.find_best_operating_point(), 1u);  // warm the cache
  resumed.restore(snap);
  EXPECT_GT(resumed.decision_epoch(), snap.decision_epoch);
  EXPECT_EQ(resumed.find_best_operating_point(), 0u);
  EXPECT_FALSE(resumed.last_decision_was_cached());
  (void)resumed.find_best_operating_point();
  EXPECT_TRUE(resumed.last_decision_was_cached());
}

TEST(AsrtmIncremental, ColumnsRecomputedOnlyForDirtyMetric) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::maximize_throughput(kThr));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 150.0, 0, 1.0});
  asrtm.add_constraint({kTime, ComparisonOp::kLessEqual, 20.0, 1, 1.0});
  asrtm.set_feedback_inertia(1.0);
  Counter& recomputed =
      MetricsRegistry::global().counter("asrtm.columns_recomputed");

  (void)asrtm.find_best_operating_point();  // builds both columns
  std::uint64_t base = recomputed.value();

  // A goal change keeps every column valid: the cached constraint_value
  // columns are goal-independent.
  asrtm.set_constraint_goal(0, 120.0);
  (void)asrtm.find_best_operating_point();
  EXPECT_EQ(recomputed.value(), base);

  // Power correction moves: only the power column is rebuilt.
  asrtm.send_feedback(1, kPower, 88.0);
  (void)asrtm.find_best_operating_point();
  EXPECT_EQ(recomputed.value(), base + 1);
  base = recomputed.value();

  // Throughput correction moves: no constraint reads it, so a decision
  // rebuilds no column at all.
  asrtm.send_feedback(1, kThr, 0.3);
  (void)asrtm.find_best_operating_point();
  EXPECT_EQ(recomputed.value(), base);

  // invalidate_decision_cache is the sledgehammer: every column redone.
  asrtm.invalidate_decision_cache();
  (void)asrtm.find_best_operating_point();
  EXPECT_EQ(recomputed.value(), base + 2);
}

TEST(AsrtmIncremental, DisablingTheCacheStillDecidesCorrectly) {
  Asrtm asrtm(fixed_kb());
  asrtm.set_rank(Rank::minimize_exec_time(kTime));
  asrtm.add_constraint({kPower, ComparisonOp::kLessEqual, 100.0, 0, 0.0});
  asrtm.set_decision_cache_enabled(false);
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_FALSE(asrtm.last_decision_was_cached());
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  EXPECT_FALSE(asrtm.last_decision_was_cached());  // never serves the cache
  asrtm.set_decision_cache_enabled(true);
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);
  (void)asrtm.find_best_operating_point();
  EXPECT_TRUE(asrtm.last_decision_was_cached());
}

}  // namespace
}  // namespace socrates::margot
