// Tests for the pipeline-level fault injector: spec grammar, the
// deterministic per-site schedules, and the ArtifactCache disk-fault
// hooks (short writes, read corruption, stale temp files).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "support/artifact_cache.hpp"
#include "support/chaos.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

namespace fs = std::filesystem;

/// Disarms the global engine around each test: chaos must neither leak
/// into other tests of this binary nor leak *in* from a SOCRATES_CHAOS
/// environment (the chaos-smoke preset) — these tests install their own
/// specs.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { ChaosEngine::global().disarm(); }
  void TearDown() override { ChaosEngine::global().disarm(); }
};

TEST(ChaosSpecParse, FullGrammarRoundTrips) {
  const auto spec = ChaosSpec::parse(
      "stage-fail=0.2, stage-hang=0.1,stage-slow=0.3,cache-read=0.4,"
      "cache-write=0.5,cache-tmp=0.6,hang-ms=120,slow-ms=7:2024");
  EXPECT_DOUBLE_EQ(spec.stage_fail, 0.2);
  EXPECT_DOUBLE_EQ(spec.stage_hang, 0.1);
  EXPECT_DOUBLE_EQ(spec.stage_slow, 0.3);
  EXPECT_DOUBLE_EQ(spec.cache_read, 0.4);
  EXPECT_DOUBLE_EQ(spec.cache_write, 0.5);
  EXPECT_DOUBLE_EQ(spec.cache_tmp, 0.6);
  EXPECT_DOUBLE_EQ(spec.hang_ms, 120.0);
  EXPECT_DOUBLE_EQ(spec.slow_ms, 7.0);
  EXPECT_EQ(spec.seed, 2024u);
  EXPECT_TRUE(spec.any());
}

TEST(ChaosSpecParse, EmptyAndSeedlessSpecs) {
  EXPECT_FALSE(ChaosSpec::parse("").any());
  const auto spec = ChaosSpec::parse("stage-fail=1");
  EXPECT_DOUBLE_EQ(spec.stage_fail, 1.0);
  EXPECT_EQ(spec.seed, 1u);  // default seed
}

TEST(ChaosSpecParse, ServerFaultSitesParse) {
  const auto spec = ChaosSpec::parse(
      "shard-stall=0.25,ingest-flood=0.5,journal-fail=0.75,"
      "stall-ms=120,flood-burst=16:7");
  EXPECT_DOUBLE_EQ(spec.shard_stall, 0.25);
  EXPECT_DOUBLE_EQ(spec.ingest_flood, 0.5);
  EXPECT_DOUBLE_EQ(spec.journal_fail, 0.75);
  EXPECT_DOUBLE_EQ(spec.stall_ms, 120.0);
  EXPECT_DOUBLE_EQ(spec.flood_burst, 16.0);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.any());
}

TEST(ChaosSpecParse, ServerFaultValuesAreValidated) {
  EXPECT_THROW(ChaosSpec::parse("shard-stall=1.5"), Error);
  EXPECT_THROW(ChaosSpec::parse("ingest-flood=-0.1"), Error);
  EXPECT_THROW(ChaosSpec::parse("journal-fail=nope"), Error);
  EXPECT_THROW(ChaosSpec::parse("flood-burst=0"), Error);     // count >= 1
  EXPECT_THROW(ChaosSpec::parse("flood-burst=99999"), Error); // count <= 4096
  EXPECT_THROW(ChaosSpec::parse("stall-ms=999999"), Error);
}

TEST(ChaosEngineBasics, ServerHooksFollowTheirProbabilities) {
  ChaosEngine engine;
  ChaosSpec spec;
  spec.shard_stall = 1.0;
  spec.journal_fail = 1.0;
  spec.ingest_flood = 0.0;
  engine.install(spec);
  EXPECT_TRUE(engine.stall_shard("server.shard0"));
  EXPECT_TRUE(engine.fail_journal("checkpoint.journal"));
  for (int i = 0; i < 32; ++i)
    EXPECT_FALSE(engine.flood_ingest("server.ingest")) << "p=0 must never fire";
}

TEST(ChaosEngineBasics, ServerSiteSchedulesAreDeterministic) {
  ChaosSpec spec;
  spec.ingest_flood = 0.5;
  spec.seed = 42;
  ChaosEngine a;
  ChaosEngine b;
  a.install(spec);
  b.install(spec);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.flood_ingest("server.ingest"), b.flood_ingest("server.ingest"))
        << "draw " << i;
  }
}

TEST(ChaosSpecParse, StorageResilienceKeysParse) {
  const auto spec =
      ChaosSpec::parse("disk-full=0.25,crash-at=snapshot-rename:2:99");
  EXPECT_DOUBLE_EQ(spec.disk_full, 0.25);
  EXPECT_EQ(spec.crash_site, "snapshot-rename");
  EXPECT_EQ(spec.crash_after, 2u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_TRUE(spec.any());
}

TEST(ChaosSpecParse, CrashAtOccurrenceBindsBeforeTheSeed) {
  // A single trailing colon on a crash-at last entry is the occurrence
  // count, not the seed — the documented grammar disambiguation.
  const auto spec = ChaosSpec::parse("crash-at=journal-append:3");
  EXPECT_EQ(spec.crash_site, "journal-append");
  EXPECT_EQ(spec.crash_after, 3u);
  EXPECT_EQ(spec.seed, 1u);  // default: the colon bound to the count

  const auto bare = ChaosSpec::parse("crash-at=journal-flush");
  EXPECT_EQ(bare.crash_site, "journal-flush");
  EXPECT_EQ(bare.crash_after, 1u);  // default: the first arrival
}

TEST(ChaosSpecParse, StorageResilienceValuesAreValidated) {
  EXPECT_THROW(ChaosSpec::parse("disk-full=1.5"), Error);
  EXPECT_THROW(ChaosSpec::parse("crash-at=not-a-site"), Error);
  EXPECT_THROW(ChaosSpec::parse("crash-at=journal-append:0"), Error);
  EXPECT_THROW(ChaosSpec::parse("crash-at=journal-append:nope"), Error);
}

TEST(ChaosEngineBasics, CrashPointFiresExactlyAtTheNthArrival) {
  ChaosEngine engine;
  ChaosSpec spec;
  spec.crash_site = "snapshot-rename";
  spec.crash_after = 3;
  engine.install(spec);
  EXPECT_FALSE(engine.crash_now("snapshot-rename"));  // arrival 1
  EXPECT_FALSE(engine.crash_now("journal-append"));   // other site: inert
  EXPECT_FALSE(engine.crash_now("snapshot-rename"));  // arrival 2
  EXPECT_TRUE(engine.crash_now("snapshot-rename"));   // arrival 3: death
  EXPECT_FALSE(engine.crash_now("snapshot-rename"));  // fires exactly once
  EXPECT_EQ(engine.injected(), 1u);
}

TEST(ChaosEngineBasics, DiskFullHookFollowsItsProbability) {
  ChaosEngine engine;
  ChaosSpec spec;
  spec.disk_full = 1.0;
  engine.install(spec);
  EXPECT_TRUE(engine.fail_disk("checkpoint.disk"));
  engine.disarm();
  EXPECT_FALSE(engine.fail_disk("checkpoint.disk"));
}

TEST(ChaosSpecParse, MalformedSpecsThrowSocratesError) {
  EXPECT_THROW(ChaosSpec::parse("unknown-key=0.5"), Error);
  EXPECT_THROW(ChaosSpec::parse("stage-fail"), Error);
  EXPECT_THROW(ChaosSpec::parse("stage-fail=nope"), Error);
  EXPECT_THROW(ChaosSpec::parse("stage-fail=1.5"), Error);
  EXPECT_THROW(ChaosSpec::parse("stage-fail=-0.1"), Error);
  EXPECT_THROW(ChaosSpec::parse("hang-ms=999999"), Error);
  EXPECT_THROW(ChaosSpec::parse("stage-fail=0.5:notaseed"), Error);
}

TEST(ChaosEngineBasics, DisabledEngineInjectsNothing) {
  ChaosEngine engine;
  EXPECT_FALSE(engine.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(engine.on_stage("stage.Parse"));
    EXPECT_FALSE(engine.corrupt_read("cache.read"));
    EXPECT_FALSE(engine.fail_write("cache.write"));
    EXPECT_FALSE(engine.drop_rename("cache.tmp"));
    EXPECT_FALSE(engine.fire_indexed("dse.point", i));
  }
  EXPECT_EQ(engine.injected(), 0u);
}

TEST(ChaosEngineBasics, CertainFaultAlwaysFires) {
  ChaosEngine engine;
  ChaosSpec spec;
  spec.stage_fail = 1.0;
  engine.install(spec);
  EXPECT_TRUE(engine.enabled());
  EXPECT_THROW(engine.on_stage("stage.Parse"), ChaosFault);
  EXPECT_THROW(engine.on_stage("stage.Parse"), ChaosFault);
  EXPECT_EQ(engine.injected(), 2u);
  engine.disarm();
  EXPECT_NO_THROW(engine.on_stage("stage.Parse"));
}

TEST(ChaosEngineBasics, ScheduleIsDeterministicPerSite) {
  ChaosSpec spec;
  spec.cache_write = 0.5;
  spec.seed = 7;

  const auto pattern_of = [&spec](const char* site) {
    ChaosEngine engine;
    engine.install(spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(engine.fail_write(site));
    return pattern;
  };

  const auto first = pattern_of("cache.write");
  const auto second = pattern_of("cache.write");
  EXPECT_EQ(first, second);  // re-install resets the site counters
  EXPECT_NE(first, pattern_of("cache.other"));  // sites are independent

  ChaosSpec reseeded = spec;
  reseeded.seed = 8;
  ChaosEngine engine;
  engine.install(reseeded);
  std::vector<bool> pattern;
  for (int i = 0; i < 64; ++i) pattern.push_back(engine.fail_write("cache.write"));
  EXPECT_NE(first, pattern);
}

TEST(ChaosEngineBasics, IndexedDrawIsIndependentOfCallOrder) {
  ChaosSpec spec;
  spec.stage_fail = 0.5;
  spec.seed = 11;
  ChaosEngine engine;
  engine.install(spec);

  std::vector<bool> forward, backward(100);
  for (int i = 0; i < 100; ++i) forward.push_back(engine.fire_indexed("dse.point", i));
  for (int i = 99; i >= 0; --i) backward[i] = engine.fire_indexed("dse.point", i);
  EXPECT_EQ(forward, backward);
}

// ---- ArtifactCache disk-fault hooks ---------------------------------------------

class ChaosCacheTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    dir_ = fs::temp_directory_path() /
           ("socrates_chaos_cache." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    ChaosTest::TearDown();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(ChaosCacheTest, InjectedShortWritePublishesNothing) {
  ChaosSpec spec;
  spec.cache_write = 1.0;
  ChaosEngine::global().install(spec);

  ArtifactCache cache(dir_.string());
  cache.store(1, "thing", "payload-bytes");
  ChaosEngine::global().disarm();

  // Nothing was published to disk; only the memory tier has it.
  cache.clear_memory();
  EXPECT_FALSE(cache.load(1, "thing").has_value());
  for (const auto& entry : fs::directory_iterator(dir_))
    FAIL() << "unexpected file " << entry.path();
}

TEST_F(ChaosCacheTest, InjectedReadCorruptionIsAMissNotAnError) {
  ArtifactCache cache(dir_.string());
  cache.store(2, "thing", "payload-bytes");
  cache.clear_memory();

  ChaosSpec spec;
  spec.cache_read = 1.0;
  ChaosEngine::global().install(spec);
  EXPECT_FALSE(cache.load(2, "thing").has_value());
  ChaosEngine::global().disarm();

  // The file itself is intact: without chaos the read succeeds.
  const auto hit = cache.load(2, "thing");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
}

TEST_F(ChaosCacheTest, DroppedRenameLeavesATmpFileTheNextCacheSweeps) {
  ChaosSpec spec;
  spec.cache_tmp = 1.0;
  ChaosEngine::global().install(spec);

  ArtifactCache cache(dir_.string());
  cache.store(3, "thing", "payload-bytes");
  ChaosEngine::global().disarm();

  // The writer "died" before the rename: a stale temp file remains and
  // the artifact was never published.
  std::size_t tmp_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().filename().string().find(".artifact.tmp.") != std::string::npos)
      ++tmp_files;
  EXPECT_EQ(tmp_files, 1u);
  cache.clear_memory();
  EXPECT_FALSE(cache.load(3, "thing").has_value());

  // A new cache on the same directory (the restarted process) sweeps it.
  ArtifactCache restarted(dir_.string());
  EXPECT_EQ(restarted.stats().swept_tmp_files, 1u);
  for (const auto& entry : fs::directory_iterator(dir_))
    FAIL() << "stale file survived the sweep: " << entry.path();
}

}  // namespace
}  // namespace socrates
