// Locale independence of every text format in the tree.
//
// std::stod / strtod / iostream double formatting honour the global C
// locale: under a comma-decimal locale (de_DE, fr_FR, ...) "0.5"
// parses as 0 and 0.5 prints as "0,5", silently corrupting chaos
// specs, knowledge CSV files, env knobs and JSON artifacts.  The tree
// therefore parses through the strict from_chars grammar
// (support/bench_json.hpp: parse_strict_double) and formats through
// to_chars; these tests pin both, running every assertion under a
// comma-decimal locale when one is installed (skipped otherwise —
// the grammar assertions still run under the classic locale).
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <locale>
#include <sstream>
#include <string>

#include "margot/kb_io.hpp"
#include "margot/operating_point.hpp"
#include "support/bench_json.hpp"
#include "support/chaos.hpp"
#include "support/env.hpp"
#include "support/serialize.hpp"

namespace socrates {
namespace {

/// Installs a comma-decimal locale (both the C locale strtod reads and
/// the C++ global locale streams default to) for one test's scope;
/// `ok()` is false when none of the candidates is installed.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() {
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                             "fr_FR.utf8", "it_IT.UTF-8", "C.UTF-8@euro"}) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        try {
          std::locale::global(std::locale(name));
        } catch (const std::runtime_error&) {
          continue;  // C library has it, C++ library does not
        }
        // Only commit to a locale that actually uses ',' as the
        // radix point — C.UTF-8 variants may not.
        std::ostringstream probe;
        probe << 0.5;
        if (probe.str().find(',') != std::string::npos) {
          ok_ = true;
          return;
        }
      }
    }
    restore();
  }
  ~CommaLocaleGuard() { restore(); }

  bool ok() const { return ok_; }

 private:
  static void restore() {
    std::setlocale(LC_ALL, "C");
    std::locale::global(std::locale::classic());
  }
  bool ok_ = false;
};

#define REQUIRE_COMMA_LOCALE(guard)                                         \
  if (!(guard).ok()) {                                                      \
    GTEST_SKIP() << "no comma-decimal locale installed on this system";     \
  }

// ---- the strict grammar (locale-free by construction) ------------------------------

TEST(StrictDouble, AcceptsRfc8259Numbers) {
  EXPECT_DOUBLE_EQ(parse_strict_double("0").value(), 0.0);
  EXPECT_DOUBLE_EQ(parse_strict_double("-0.5").value(), -0.5);
  EXPECT_DOUBLE_EQ(parse_strict_double("10.25e2").value(), 1025.0);
  EXPECT_DOUBLE_EQ(parse_strict_double("3E-2").value(), 0.03);
  EXPECT_DOUBLE_EQ(parse_strict_double("1e+3").value(), 1000.0);
}

TEST(StrictDouble, RejectsStrtodLaxitiesAndGarbage) {
  for (const char* bad : {"", " 1", "1 ", "+1", ".5", "01", "0x10", "1.",
                          "1e", "1e+", "inf", "nan", "-inf", "1,5", "1.5x"}) {
    EXPECT_FALSE(parse_strict_double(bad).has_value()) << "'" << bad << "'";
  }
}

// ---- parsing under a comma-decimal locale ------------------------------------------

TEST(LocaleParsing, StrictDoubleIgnoresTheGlobalLocale) {
  CommaLocaleGuard guard;
  REQUIRE_COMMA_LOCALE(guard);
  // The classic failure: strtod under de_DE stops at the '.' and
  // returns 0.  The strict grammar must not.
  EXPECT_DOUBLE_EQ(parse_strict_double("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(parse_strict_double("-12.75e-1").value(), -1.275);
  EXPECT_FALSE(parse_strict_double("0,5").has_value());
}

TEST(LocaleParsing, ChaosSpecParsesDotProbabilitiesAnywhere) {
  CommaLocaleGuard guard;
  REQUIRE_COMMA_LOCALE(guard);
  const ChaosSpec spec = ChaosSpec::parse("stage-fail=0.25,pool-corrupt=0.5:7");
  EXPECT_DOUBLE_EQ(spec.stage_fail, 0.25);
  EXPECT_DOUBLE_EQ(spec.pool_corrupt, 0.5);
  EXPECT_EQ(spec.seed, 7u);
}

TEST(LocaleParsing, EnvRealKnobParsesDotValues) {
  CommaLocaleGuard guard;
  REQUIRE_COMMA_LOCALE(guard);
  env::reset_warnings();
  EXPECT_DOUBLE_EQ(env::parse_real("T", "0.125", 9.0, 0.0, 1.0), 0.125);
  EXPECT_DOUBLE_EQ(env::parse_real("T2", "0,125", 9.0, 0.0, 1.0), 9.0);  // fallback
}

TEST(LocaleParsing, KnowledgeCsvRoundTripsUnderCommaLocale) {
  CommaLocaleGuard guard;
  REQUIRE_COMMA_LOCALE(guard);
  margot::KnowledgeBase kb({"threads"}, {"exec_time_s"});
  margot::OperatingPoint op;
  op.knobs = {4096};  // grouping locales would print "4.096"
  op.metrics = {{0.125, 0.5}};
  kb.add(std::move(op));
  // Save must imbue the classic locale (a ',' radix point collides
  // with the CSV separator); load must parse '.' cells regardless.
  const std::string text = margot::knowledge_to_string(kb);
  EXPECT_EQ(text.find(','), std::string::npos)
      << "CSV payload grew a locale-formatted comma:\n" << text;
  const margot::KnowledgeBase back = margot::knowledge_from_string(text);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].knobs[0], 4096);
  EXPECT_DOUBLE_EQ(back[0].metrics[0].mean, 0.125);
  EXPECT_DOUBLE_EQ(back[0].metrics[0].stddev, 0.5);
}

TEST(LocaleParsing, ExactSerializationRoundTripsUnderCommaLocale) {
  CommaLocaleGuard guard;
  REQUIRE_COMMA_LOCALE(guard);
  for (const double v : {0.1, -123.456, 1e-300, 6.25, 0.0}) {
    EXPECT_EQ(parse_exact_text(format_exact(v)), v);
    std::stringstream ss;
    ss << format_exact(v);
    EXPECT_EQ(parse_exact(ss), v);
  }
}

TEST(LocaleParsing, JsonWriterEmitsDotDecimalsUnderCommaLocale) {
  CommaLocaleGuard guard;
  REQUIRE_COMMA_LOCALE(guard);
  JsonWriter w;
  w.begin_object().kv("x", 0.5).kv("y", 1234.75).end_object();
  EXPECT_EQ(w.str().find(','), w.str().find("\"y\"") - 1)
      << "only the member separator may be a comma: " << w.str();
  const auto leaves = parse_numeric_leaves(w.str());
  EXPECT_DOUBLE_EQ(leaves.at("x"), 0.5);
  EXPECT_DOUBLE_EQ(leaves.at("y"), 1234.75);
}

}  // namespace
}  // namespace socrates
