// End-to-end validation with a real C compiler: the woven output of
// every benchmark must compile (and for one benchmark, link and run)
// with the system cc.  Skipped gracefully on hosts without a compiler.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "ir/printer.hpp"
#include "kernels/sources.hpp"
#include "weaver/margot_header.hpp"
#include "weaver/report.hpp"

namespace socrates::weaver {
namespace {

bool have_cc() {
  static const bool kHave = std::system("cc --version > /dev/null 2>&1") == 0;
  return kHave;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

std::string workdir() {
  const std::string dir = testing::TempDir() + "/socrates_weave_cc";
  std::system(("mkdir -p " + dir).c_str());
  return dir;
}

class CompileWoven : public ::testing::TestWithParam<std::string> {};

TEST_P(CompileWoven, WovenSourceCompilesWithRealCc) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  const std::string dir = workdir();
  const auto woven =
      weave_benchmark_paper_space(GetParam(), kernels::benchmark_source(GetParam()));

  const std::string base = dir + "/" + GetParam();
  write_file(dir + "/margot.h", margot_header_source());
  write_file(base + ".c", ir::print(woven.unit));

  const std::string cmd = "cc -std=c99 -fopenmp -I" + dir + " -c " + base + ".c -o " +
                          base + ".o 2> " + base + ".err";
  const int rc = std::system(cmd.c_str());
  std::string errors;
  {
    std::ifstream err(base + ".err");
    errors.assign(std::istreambuf_iterator<char>(err), {});
  }
  EXPECT_EQ(rc, 0) << "cc failed on woven " << GetParam() << ":\n" << errors;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CompileWoven,
                         ::testing::ValuesIn(kernels::benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });
INSTANTIATE_TEST_SUITE_P(ExtendedBenchmarks, CompileWoven,
                         ::testing::ValuesIn(kernels::extended_benchmark_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });


TEST(CompileWoven, WovenBinaryLinksAndRunsWithTheStub) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  const std::string dir = workdir();
  // mvt is the smallest footprint (two N x N doubles fit comfortably).
  const auto woven =
      weave_benchmark_paper_space("mvt", kernels::benchmark_source("mvt"));

  write_file(dir + "/margot.h", margot_header_source());
  write_file(dir + "/margot_stub.c", margot_stub_source());
  write_file(dir + "/mvt_adaptive.c", ir::print(woven.unit));

  const std::string bin = dir + "/mvt_adaptive";
  const std::string cmd = "cc -std=c99 -O1 -fopenmp -I" + dir + " " + dir +
                          "/mvt_adaptive.c " + dir + "/margot_stub.c -lm -o " + bin +
                          " 2> " + bin + ".err";
  int rc = std::system(cmd.c_str());
  std::string errors;
  {
    std::ifstream err(bin + ".err");
    errors.assign(std::istreambuf_iterator<char>(err), {});
  }
  ASSERT_EQ(rc, 0) << "link failed:\n" << errors;

  // The adaptive binary must run to completion (single thread on this
  // host; the stub sets num_threads which OpenMP honours).
  rc = std::system(("OMP_NUM_THREADS=1 " + bin + " > /dev/null 2>&1").c_str());
  EXPECT_EQ(rc, 0) << "woven mvt binary crashed";
}

}  // namespace
}  // namespace socrates::weaver
