// Tests for input-aware multi-knowledge (mARGOt data features) and the
// knowledge-base (de)serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "margot/data_features.hpp"
#include "margot/kb_io.hpp"
#include "support/error.hpp"

namespace socrates::margot {
namespace {

KnowledgeBase kb_with(double time_mean) {
  KnowledgeBase kb({"config"}, {"exec_time_s", "power_w", "throughput"});
  kb.add(OperatingPoint{
      {0}, {{time_mean, 0.01}, {60.0, 1.0}, {1.0 / time_mean, 0.001}}});
  return kb;
}

DataFeatureSchema size_schema() {
  return DataFeatureSchema{{"matrix_size"}, {FeatureComparison::kDontCare}};
}

TEST(MultiKnowledge, SelectsNearestCluster) {
  MultiKnowledge mk(size_schema());
  mk.add_cluster({100.0}, kb_with(0.1));
  mk.add_cluster({1000.0}, kb_with(1.0));
  mk.add_cluster({4000.0}, kb_with(8.0));
  EXPECT_EQ(mk.select({120.0}), 0u);
  EXPECT_EQ(mk.select({900.0}), 1u);
  EXPECT_EQ(mk.select({9999.0}), 2u);
}

TEST(MultiKnowledge, TwoDimensionalDistanceIsNormalized) {
  // Dimensions with wildly different units must both matter.
  MultiKnowledge mk(DataFeatureSchema{{"rows", "sparsity"},
                                      {FeatureComparison::kDontCare,
                                       FeatureComparison::kDontCare}});
  mk.add_cluster({1000.0, 0.9}, kb_with(1.0));
  mk.add_cluster({1000.0, 0.1}, kb_with(2.0));
  EXPECT_EQ(mk.select({1000.0, 0.85}), 0u);
  EXPECT_EQ(mk.select({1000.0, 0.15}), 1u);
}

TEST(MultiKnowledge, GreaterOrEqualConstraintFiltersClusters) {
  // "use knowledge profiled on inputs at least as large as the current
  // one" — a pessimistic sizing rule.
  MultiKnowledge mk(DataFeatureSchema{{"size"}, {FeatureComparison::kGreaterOrEqual}});
  mk.add_cluster({100.0}, kb_with(0.1));
  mk.add_cluster({1000.0}, kb_with(1.0));
  // 150 is closer to 100, but 100 < 150 violates the constraint.
  EXPECT_EQ(mk.select({150.0}), 1u);
}

TEST(MultiKnowledge, LessOrEqualConstraint) {
  MultiKnowledge mk(DataFeatureSchema{{"size"}, {FeatureComparison::kLessOrEqual}});
  mk.add_cluster({100.0}, kb_with(0.1));
  mk.add_cluster({1000.0}, kb_with(1.0));
  EXPECT_EQ(mk.select({900.0}), 0u);  // 1000 > 900 violates <=
}

TEST(MultiKnowledge, FallsBackWhenNoClusterAdmissible) {
  MultiKnowledge mk(DataFeatureSchema{{"size"}, {FeatureComparison::kGreaterOrEqual}});
  mk.add_cluster({100.0}, kb_with(0.1));
  mk.add_cluster({1000.0}, kb_with(1.0));
  // Nothing is >= 5000; nearest overall must be returned.
  EXPECT_EQ(mk.select({5000.0}), 1u);
}

TEST(MultiKnowledge, ContractChecks) {
  MultiKnowledge mk(size_schema());
  EXPECT_THROW(mk.select({1.0}), ContractViolation);  // no clusters yet
  EXPECT_THROW(mk.add_cluster({1.0, 2.0}, kb_with(1.0)), ContractViolation);
  mk.add_cluster({10.0}, kb_with(1.0));
  EXPECT_THROW(mk.select({1.0, 2.0}), ContractViolation);
}

// ---- knowledge base IO ----------------------------------------------------------

KnowledgeBase sample_kb() {
  KnowledgeBase kb({"config", "threads", "binding"},
                   {"exec_time_s", "power_w", "throughput"});
  kb.add(OperatingPoint{{0, 1, 0}, {{11.86, 0.21}, {55.4, 0.4}, {0.0843, 0.0015}}});
  kb.add(OperatingPoint{{7, 32, 1}, {{0.997, 0.013}, {136.4, 1.9}, {1.003, 0.013}}});
  kb.add(OperatingPoint{{3, 8, 0}, {{2.152, 0.04}, {86.4, 0.8}, {0.4647, 0.009}}});
  return kb;
}

TEST(KbIo, RoundTripsExactly) {
  const auto kb = sample_kb();
  const auto loaded = knowledge_from_string(knowledge_to_string(kb));
  ASSERT_EQ(loaded.size(), kb.size());
  EXPECT_EQ(loaded.knob_names(), kb.knob_names());
  EXPECT_EQ(loaded.metric_names(), kb.metric_names());
  for (std::size_t i = 0; i < kb.size(); ++i) {
    EXPECT_EQ(loaded[i].knobs, kb[i].knobs);
    for (std::size_t m = 0; m < kb[i].metrics.size(); ++m) {
      EXPECT_DOUBLE_EQ(loaded[i].metrics[m].mean, kb[i].metrics[m].mean);
      EXPECT_DOUBLE_EQ(loaded[i].metrics[m].stddev, kb[i].metrics[m].stddev);
    }
  }
}

TEST(KbIo, FormatIsHumanReadable) {
  const std::string text = knowledge_to_string(sample_kb());
  EXPECT_NE(text.find("# knobs: config,threads,binding"), std::string::npos);
  EXPECT_NE(text.find("# metrics: exec_time_s,power_w,throughput"), std::string::npos);
  EXPECT_NE(text.find("knob:config"), std::string::npos);
}

TEST(KbIo, RejectsMissingHeaders) {
  EXPECT_THROW(knowledge_from_string("1,2,3\n"), KnowledgeFormatError);
  EXPECT_THROW(knowledge_from_string("# knobs: a\nrubbish\n"), KnowledgeFormatError);
}

TEST(KbIo, RejectsWrongArityRows) {
  std::string text = knowledge_to_string(sample_kb());
  text += "1,2,3\n";  // truncated row
  EXPECT_THROW(knowledge_from_string(text), KnowledgeFormatError);
}

TEST(KbIo, RejectsNonNumericCells) {
  std::string text =
      "# knobs: k\n# metrics: m\nknob:k,m,m:sd\nxyz,1.0,0.0\n";
  EXPECT_THROW(knowledge_from_string(text), KnowledgeFormatError);
}

TEST(KbIo, RejectsFractionalKnobs) {
  std::string text = "# knobs: k\n# metrics: m\nknob:k,m,m:sd\n1.5,1.0,0.0\n";
  EXPECT_THROW(knowledge_from_string(text), KnowledgeFormatError);
}

// Regression fixtures for the failure modes a long campaign actually
// meets: files truncated mid-header, mid-table or mid-row, and garbage
// bytes.  Every rejection must name the offending line so the file can
// be repaired by hand.
TEST(KbIo, TruncatedFixturesNameTheOffendingLine) {
  const std::string good = knowledge_to_string(sample_kb());

  const auto expect_message = [](const std::string& text, const char* needle) {
    try {
      knowledge_from_string(text);
      FAIL() << "expected KnowledgeFormatError for fixture with " << needle;
    } catch (const KnowledgeFormatError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };

  expect_message("", "line 1");                       // empty file
  expect_message("# knobs: a,b\n", "line 2");         // ends after knobs header
  expect_message("# knobs: a\n# metrics: m\n", "line 3");  // no column header

  // Truncated mid-row: the row's own line number is reported.
  const auto last_newline = good.rfind('\n', good.size() - 2);
  expect_message(good.substr(0, last_newline + 4) + "\n", "line 6");

  // Garbage cell deep in the table names the column.
  std::string garbage = good;
  garbage += "1,2,0,1.0,0.1,2.0,0.2,nonsense###,0.3\n";
  expect_message(garbage, "throughput");
}

TEST(KbIo, FormatErrorIsASocratesError) {
  // Callers that guard campaign I/O with catch (const socrates::Error&)
  // must catch knowledge-format failures too.
  EXPECT_THROW(knowledge_from_string("garbage"), Error);
}

TEST(KbIo, SkipsBlankLines) {
  std::string text = knowledge_to_string(sample_kb());
  text += "\n\n";
  EXPECT_EQ(knowledge_from_string(text).size(), 3u);
}

}  // namespace
}  // namespace socrates::margot
