// End-to-end integration tests: the full SOCRATES toolchain (features
// -> COBAYN -> weaving -> DSE -> knowledge) and the adaptive
// application runtime (the Figure 4 / Figure 5 behaviours).
#include <gtest/gtest.h>

#include "socrates/adaptive_app.hpp"
#include "socrates/toolchain.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

Toolchain& toolchain() {
  static Toolchain kToolchain = [] {
    ToolchainOptions opts;
    opts.dse_repetitions = 3;
    opts.corpus_size = 32;
    return Toolchain(model(), opts);
  }();
  return kToolchain;
}

TEST(Toolchain, BuildProducesAllArtifacts) {
  const auto bin = toolchain().build("2mm");
  EXPECT_EQ(bin.benchmark, "2mm");
  EXPECT_EQ(bin.custom_configs.size(), 4u);
  EXPECT_EQ(bin.space.configs.size(), 8u);  // 4 levels + 4 CFs
  EXPECT_EQ(bin.profile.size(), 8u * 32u * 2u);
  EXPECT_EQ(bin.knowledge.size(), bin.profile.size());
  EXPECT_EQ(bin.woven.kernels.size(), 1u);
  EXPECT_EQ(bin.woven.kernels[0].versions.size(), 16u);
  EXPECT_GT(bin.kernel_features[features::kNumLoops], 0.0);
}

TEST(Toolchain, TwoStageWithPruningShrinksTheDeployment) {
  // SOCRATES_DSE=two-stage + SOCRATES_DSE_PRUNE: the Dse stage explores
  // a fraction of the space, the Prune stage clusters the front, and
  // the weaver emits only the pruned clone set (< the 16-clone cross
  // product) while the knowledge base carries the representatives only.
  ToolchainOptions opts;
  opts.dse_repetitions = 3;
  opts.corpus_size = 32;
  opts.dse.kind = dse::DseStrategyOptions::Kind::kTwoStage;
  opts.dse.max_representatives = 6;
  Toolchain tc(model(), opts);
  const auto bin = tc.build("2mm");

  EXPECT_LT(bin.profile.size(), bin.space.size() / 4)
      << "the two-stage search must explore far fewer points than the sweep";
  ASSERT_FALSE(bin.representatives.empty());
  EXPECT_LE(bin.representatives.size(), 6u);
  for (const std::size_t i : bin.representatives) ASSERT_LT(i, bin.profile.size());
  EXPECT_EQ(bin.knowledge.size(), bin.representatives.size());
  ASSERT_EQ(bin.woven.kernels.size(), 1u);
  EXPECT_LT(bin.woven.kernels[0].versions.size(), 16u);
  EXPECT_GE(bin.woven.kernels[0].versions.size(), 1u);
}

TEST(Toolchain, PaperCfModeUsesPublishedConfigs) {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 1;
  Toolchain tc(model(), opts);
  const auto bin = tc.build("mvt");
  const auto paper = platform::paper_custom_configs();
  ASSERT_EQ(bin.custom_configs.size(), paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i)
    EXPECT_TRUE(bin.custom_configs[i].config == paper[i].config);
}

TEST(Toolchain, CobaynTrainsOnce) {
  toolchain().train_cobayn();
  EXPECT_TRUE(toolchain().cobayn_trained());
  const auto* before = &toolchain().cobayn_model();
  toolchain().train_cobayn();  // idempotent
  EXPECT_EQ(before, &toolchain().cobayn_model());
}

// ---- Figure 4 behaviour: static power-budget sweep -----------------------------

TEST(PowerBudgetSweep, ExecTimeMonotoneNonIncreasing) {
  const auto bin = toolchain().build("2mm");
  margot::Asrtm asrtm(bin.knowledge);
  asrtm.set_rank(margot::Rank::minimize_exec_time(margot::ContextMetrics::kExecTime));
  const auto handle = asrtm.add_constraint(
      {margot::ContextMetrics::kPower, margot::ComparisonOp::kLessEqual, 0.0, 0, 0.0});

  double prev_time = 1e100;
  bool saw_infeasible = false;
  bool saw_feasible = false;
  for (double budget = 45.0; budget <= 140.0; budget += 5.0) {
    asrtm.set_constraint_goal(handle, budget);
    const auto& op = asrtm.best_operating_point();
    EXPECT_LE(op.metrics[margot::ContextMetrics::kExecTime].mean, prev_time * 1.0001);
    prev_time = op.metrics[margot::ContextMetrics::kExecTime].mean;
    saw_infeasible |= !asrtm.last_selection_feasible();
    saw_feasible |= asrtm.last_selection_feasible();
  }
  EXPECT_TRUE(saw_infeasible) << "45 W should be below the platform floor";
  EXPECT_TRUE(saw_feasible);
}

TEST(PowerBudgetSweep, SelectedThreadsGrowWithBudget) {
  const auto bin = toolchain().build("2mm");
  margot::Asrtm asrtm(bin.knowledge);
  asrtm.set_rank(margot::Rank::minimize_exec_time(margot::ContextMetrics::kExecTime));
  const auto handle = asrtm.add_constraint(
      {margot::ContextMetrics::kPower, margot::ComparisonOp::kLessEqual, 60.0, 0, 0.0});
  const auto low = asrtm.knowledge()[asrtm.find_best_operating_point()].knobs[1];
  asrtm.set_constraint_goal(handle, 140.0);
  const auto high = asrtm.knowledge()[asrtm.find_best_operating_point()].knobs[1];
  EXPECT_GT(high, low);
}

// ---- Figure 5 behaviour: runtime requirement switching --------------------------

TEST(RuntimeTrace, RankSwitchMovesTheOperatingPoint) {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.01;
  Toolchain tc(model(), opts);
  AdaptiveApplication app(tc.build("2mm"), model(), 0.01);

  using M = margot::ContextMetrics;
  app.asrtm().set_rank(
      margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  std::vector<TraceSample> trace;
  app.run_until(30.0, trace);
  const auto eco = trace.back();

  app.asrtm().set_rank(margot::Rank::maximize_throughput(M::kThroughput));
  app.run_until(60.0, trace);
  const auto fast = trace.back();

  app.asrtm().set_rank(
      margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  app.run_until(90.0, trace);
  const auto eco2 = trace.back();

  // Performance mode: more power, shorter kernel time, >= threads.
  EXPECT_GT(fast.power_w, eco.power_w * 1.2);
  EXPECT_LT(fast.exec_time_s, eco.exec_time_s);
  EXPECT_GE(fast.threads, eco.threads);
  // And the policy reverts.
  EXPECT_EQ(eco2.config_name, eco.config_name);
  EXPECT_EQ(eco2.threads, eco.threads);
}

TEST(RuntimeTrace, IterationsAdvanceSimulatedTime) {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 1;
  opts.work_scale = 0.05;
  Toolchain tc(model(), opts);
  AdaptiveApplication app(tc.build("syrk"), model(), 0.05);
  app.asrtm().set_rank(
      margot::Rank::maximize_throughput(margot::ContextMetrics::kThroughput));
  const double t0 = app.now_s();
  const auto s1 = app.run_iteration();
  EXPECT_TRUE(s1.configuration_changed);  // first update always changes
  const auto s2 = app.run_iteration();
  EXPECT_FALSE(s2.configuration_changed);
  EXPECT_GT(app.now_s(), t0);
  EXPECT_NEAR(app.now_s(), s1.exec_time_s + s2.exec_time_s, 1e-9);
}

TEST(RuntimeTrace, FeedbackKeepsSelectionStableUnderNoise) {
  // With measurement noise the EWMA correction must not oscillate the
  // configuration on a stationary workload.
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 3;
  opts.work_scale = 0.02;
  Toolchain tc(model(), opts);
  AdaptiveApplication app(tc.build("2mm"), model(), 0.02);
  app.asrtm().set_rank(
      margot::Rank::maximize_throughput(margot::ContextMetrics::kThroughput));
  std::vector<TraceSample> trace;
  app.run_until(20.0, trace);
  std::size_t switches = 0;
  for (std::size_t i = 1; i < trace.size(); ++i)
    if (trace[i].configuration_changed) ++switches;
  EXPECT_LE(switches, trace.size() / 10);
}

}  // namespace
}  // namespace socrates
