// Tests for the mARGOt state manager and the input-aware application.
#include <gtest/gtest.h>

#include "margot/state_manager.hpp"
#include "socrates/input_aware_app.hpp"
#include "socrates/toolchain.hpp"
#include "support/error.hpp"

namespace socrates {
namespace {

using M = margot::ContextMetrics;

margot::KnowledgeBase tiny_kb() {
  margot::KnowledgeBase kb({"config"}, {"exec_time_s", "power_w", "throughput"});
  kb.add(margot::OperatingPoint{{0}, {{10.0, 0.5}, {50.0, 1.0}, {0.1, 0.005}}});
  kb.add(margot::OperatingPoint{{1}, {{1.0, 0.05}, {140.0, 3.0}, {1.0, 0.05}}});
  return kb;
}

TEST(StateManager, FirstDefinedStateActivates) {
  margot::Asrtm asrtm(tiny_kb());
  margot::StateManager sm(asrtm);
  sm.define_state("energy", {},
                  margot::Rank::maximize_throughput_per_watt2(M::kThroughput, M::kPower));
  EXPECT_EQ(sm.active_state(), "energy");
  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);  // 1/19600 > .1/2500? no ->
  // Thr/W^2: op0 = .1/2500 = 4.0e-5; op1 = 1/19600 = 5.1e-5 -> op1.
}

TEST(StateManager, SwitchReplacesRequirements) {
  margot::Asrtm asrtm(tiny_kb());
  margot::StateManager sm(asrtm);
  sm.define_state("performance", {}, margot::Rank::maximize_throughput(M::kThroughput));
  sm.define_state(
      "capped",
      {{M::kPower, margot::ComparisonOp::kLessEqual, 100.0, 0, 0.0}},
      margot::Rank::minimize_exec_time(M::kExecTime));

  EXPECT_EQ(asrtm.find_best_operating_point(), 1u);  // performance: fast point
  EXPECT_TRUE(sm.switch_to("capped"));
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);  // cap excludes 140 W
  EXPECT_EQ(asrtm.constraint_count(), 1u);
  EXPECT_FALSE(sm.switch_to("capped"));  // already active
  EXPECT_TRUE(sm.switch_to("performance"));
  EXPECT_EQ(asrtm.constraint_count(), 0u);
}

TEST(StateManager, FeedbackSurvivesStateSwitch) {
  margot::Asrtm asrtm(tiny_kb());
  margot::StateManager sm(asrtm);
  sm.define_state("a", {}, margot::Rank::maximize_throughput(M::kThroughput));
  sm.define_state("b", {}, margot::Rank::minimize_exec_time(M::kExecTime));
  asrtm.set_feedback_inertia(1.0);
  asrtm.send_feedback(0, M::kPower, 75.0);  // platform draws 1.5x
  sm.switch_to("b");
  EXPECT_NEAR(asrtm.correction(M::kPower), 1.5, 1e-12);
}

TEST(StateManager, GoalUpdateOnInactiveStateAppliesOnSwitch) {
  margot::Asrtm asrtm(tiny_kb());
  margot::StateManager sm(asrtm);
  sm.define_state("free", {}, margot::Rank::minimize_exec_time(M::kExecTime));
  sm.define_state(
      "capped",
      {{M::kPower, margot::ComparisonOp::kLessEqual, 200.0, 0, 0.0}},
      margot::Rank::minimize_exec_time(M::kExecTime));
  sm.set_state_constraint_goal("capped", 0, 100.0);
  sm.switch_to("capped");
  EXPECT_EQ(asrtm.find_best_operating_point(), 0u);
}

TEST(StateManager, ContractChecks) {
  margot::Asrtm asrtm(tiny_kb());
  margot::StateManager sm(asrtm);
  EXPECT_THROW(sm.active_state(), ContractViolation);
  EXPECT_THROW(sm.switch_to("nope"), ContractViolation);
  sm.define_state("x", {}, margot::Rank::maximize_throughput(M::kThroughput));
  EXPECT_THROW(sm.define_state("x", {}, margot::Rank::maximize_throughput(M::kThroughput)),
               ContractViolation);
  EXPECT_THROW(sm.set_state_constraint_goal("x", 0, 1.0), ContractViolation);
}

// ---- input-aware application --------------------------------------------------

const platform::PerformanceModel& model() {
  static const platform::PerformanceModel kModel =
      platform::PerformanceModel::paper_platform();
  return kModel;
}

InputAwareApplication make_input_aware() {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 2;
  Toolchain tc(model(), opts);
  auto binary = build_input_aware(tc.pipeline(), "gemver", {0.01, 0.2, 1.0});
  return InputAwareApplication(std::move(binary), model());
}

TEST(InputAware, BuildsOneClusterPerScale) {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 1;
  Toolchain tc(model(), opts);
  const auto binary = build_input_aware(tc.pipeline(), "2mm", {0.05, 0.5});
  EXPECT_EQ(binary.knowledge.cluster_count(), 2u);
  EXPECT_EQ(binary.knowledge.cluster(0).features[0], 0.05);
  EXPECT_EQ(binary.space.size(), 512u);
}

TEST(InputAware, SelectsNearestClusterOnInputChange) {
  auto app = make_input_aware();
  app.set_rank_all(margot::Rank::maximize_throughput(M::kThroughput));
  EXPECT_TRUE(app.set_input(0.012));
  EXPECT_EQ(app.active_cluster(), 0u);
  EXPECT_TRUE(app.set_input(0.9));
  EXPECT_EQ(app.active_cluster(), 2u);
  EXPECT_FALSE(app.set_input(0.95));  // same cluster
}

TEST(InputAware, RunRequiresInput) {
  auto app = make_input_aware();
  EXPECT_THROW(app.run_iteration(), ContractViolation);
  EXPECT_THROW(app.active_cluster(), ContractViolation);
}

TEST(InputAware, IterationUsesTheActiveClustersKnowledge) {
  auto app = make_input_aware();
  app.set_rank_all(margot::Rank::maximize_throughput(M::kThroughput));
  app.set_input(1.0);
  const auto big = app.run_iteration();
  app.set_input(0.01);
  const auto small = app.run_iteration();
  // The small input runs >> faster (and the chosen config may differ:
  // the cache-resident dataset is less bandwidth-limited).
  EXPECT_LT(small.exec_time_s, big.exec_time_s * 0.05);
}

TEST(InputAware, PerClusterKnowledgeDiffers) {
  // The premise of data features: the best throughput configuration is
  // not the same at every input scale for a bandwidth-bound kernel.
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  opts.dse_repetitions = 2;
  Toolchain tc(model(), opts);
  const auto binary = build_input_aware(tc.pipeline(), "gemver", {0.01, 1.0});

  const auto best_throughput_threads = [&](std::size_t cluster) {
    const auto& kb = binary.knowledge.cluster(cluster).knowledge;
    margot::Asrtm asrtm(kb);
    asrtm.set_rank(margot::Rank::maximize_throughput(M::kThroughput));
    return asrtm.best_operating_point().knobs[1];
  };
  // Small input scales further before hitting the bandwidth wall.
  EXPECT_GE(best_throughput_threads(0), best_throughput_threads(1));
}

TEST(InputAware, RejectsBadScales) {
  ToolchainOptions opts;
  opts.use_paper_cfs = true;
  Toolchain tc(model(), opts);
  EXPECT_THROW(build_input_aware(tc.pipeline(), "2mm", {}), ContractViolation);
  EXPECT_THROW(build_input_aware(tc.pipeline(), "2mm", {0.0}), ContractViolation);
  EXPECT_THROW(build_input_aware(tc.pipeline(), "2mm", {1.5}), ContractViolation);
}

}  // namespace
}  // namespace socrates
