// Tests for crash-safe persistence of the AS-RTM's learned state:
// snapshot round trips, kill-and-resume journal replay, corruption
// tolerance (always a clean fresh start, never a crash), the epoch
// guard against double-apply, and the bounded auto-snapshotting
// journal.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "margot/asrtm.hpp"
#include "margot/checkpoint.hpp"
#include "margot/state_manager.hpp"
#include "observability/metrics.hpp"
#include "support/chaos.hpp"
#include "support/hash.hpp"

namespace socrates::margot {
namespace {

namespace fs = std::filesystem;

KnowledgeBase make_kb(std::size_t points = 4) {
  KnowledgeBase kb({"threads"}, {"exec_time_s", "power_w"});
  for (std::size_t i = 0; i < points; ++i) {
    OperatingPoint op;
    op.knobs = {static_cast<int>(i + 1)};
    op.metrics = {{1.0 + 0.1 * static_cast<double>(i), 0.01},
                  {50.0 + static_cast<double>(i), 0.5}};
    kb.add(std::move(op));
  }
  return kb;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("socrates_ckpt." + std::to_string(::getpid()) + "." +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "asrtm.ckpt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The pre-crash workload every resume test replays: feedback drift
  /// on both metrics plus a quarantine of point 1.
  void mutate(Asrtm& asrtm) {
    asrtm.send_feedback(0, 0, 1.3);
    asrtm.send_feedback(0, 0, 1.4);
    asrtm.send_feedback(2, 1, 60.0);
    asrtm.report_variant_failure(1);
    asrtm.report_variant_failure(1);  // threshold 2 -> quarantined
    asrtm.advance_quarantine();
  }

  void expect_same_learned_state(const Asrtm& a, const Asrtm& b) {
    EXPECT_DOUBLE_EQ(b.correction(0), a.correction(0));
    EXPECT_DOUBLE_EQ(b.correction(1), a.correction(1));
    EXPECT_EQ(b.quarantined_count(), a.quarantined_count());
    EXPECT_EQ(b.quarantine_events(), a.quarantine_events());
    for (std::size_t i = 0; i < a.knowledge().size(); ++i)
      EXPECT_EQ(b.is_quarantined(i), a.is_quarantined(i)) << "point " << i;
    EXPECT_EQ(b.find_best_operating_point(), a.find_best_operating_point());
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(CheckpointTest, FirstAttachIsACleanSlate) {
  Asrtm asrtm(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(asrtm);
  EXPECT_FALSE(result.restored);
  EXPECT_EQ(result.replayed, 0u);
  EXPECT_DOUBLE_EQ(asrtm.correction(0), 1.0);
}

TEST_F(CheckpointTest, CleanShutdownRestoresFromTheSnapshot) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);
    store.detach();  // clean shutdown: final snapshot, empty journal
    EXPECT_GE(store.snapshots_written(), 1u);
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 0u);  // everything was in the snapshot
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, KillAndResumeReplaysTheJournal) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);
    // Scope exit without detach(): crash-equivalent — no snapshot was
    // ever written, the journal alone must restore the state.
  }
  EXPECT_FALSE(fs::exists(path_));

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_FALSE(result.restored);  // no snapshot existed
  EXPECT_EQ(result.replayed, 6u);
  EXPECT_EQ(result.skipped, 0u);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, KillAfterACheckpointReplaysOnlyTheTail) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);
    store.checkpoint();
    // Post-checkpoint tail, lost from no snapshot but present in the
    // journal when the process dies here.
    before.send_feedback(3, 0, 2.0);
    before.report_variant_success(2);
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 2u);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, CorruptedSnapshotIsACleanFreshStart) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a checkpoint at all\njust garbage\n";
  }
  Asrtm asrtm(make_kb());
  CheckpointStore store(path_);
  CheckpointStore::RestoreResult result;
  ASSERT_NO_THROW(result = store.attach(asrtm));
  EXPECT_FALSE(result.restored);
  EXPECT_NE(result.note.find("fresh start"), std::string::npos) << result.note;
  EXPECT_DOUBLE_EQ(asrtm.correction(0), 1.0);  // untouched
  EXPECT_FALSE(fs::exists(path_));             // stale file discarded
}

TEST_F(CheckpointTest, TruncatedSnapshotIsACleanFreshStart) {
  {
    Asrtm asrtm(make_kb());
    CheckpointStore store(path_);
    store.attach(asrtm);
    mutate(asrtm);
    store.detach();
  }
  // Cut the snapshot mid-payload (a crash during a torn copy, a full
  // disk...): the checksum cannot match.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  Asrtm asrtm(make_kb());
  CheckpointStore store(path_);
  CheckpointStore::RestoreResult result;
  ASSERT_NO_THROW(result = store.attach(asrtm));
  EXPECT_FALSE(result.restored);
  EXPECT_NE(result.note.find("fresh start"), std::string::npos) << result.note;
  EXPECT_DOUBLE_EQ(asrtm.correction(0), 1.0);
}

TEST_F(CheckpointTest, KnowledgeShapeMismatchIsACleanFreshStart) {
  {
    Asrtm asrtm(make_kb(4));
    CheckpointStore store(path_);
    store.attach(asrtm);
    mutate(asrtm);
    store.detach();
  }
  // The design space changed between runs: 3 points now.
  Asrtm smaller(make_kb(3));
  CheckpointStore store(path_);
  CheckpointStore::RestoreResult result;
  ASSERT_NO_THROW(result = store.attach(smaller));
  EXPECT_FALSE(result.restored);
  EXPECT_NE(result.note.find("fresh start"), std::string::npos) << result.note;
  EXPECT_DOUBLE_EQ(smaller.correction(0), 1.0);
}

TEST_F(CheckpointTest, CorruptJournalLinesAreSkippedNotFatal) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);
  }
  {
    // A torn trailing append plus a bit-flipped line.
    std::ofstream out(path_ + ".journal", std::ios::binary | std::ios::app);
    out << "deadbeef 0 0 0 0 1.5 \n";  // checksum does not match body
    out << "fffff";                    // torn mid-append
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  CheckpointStore::RestoreResult result;
  ASSERT_NO_THROW(result = store.attach(after));
  EXPECT_EQ(result.replayed, 6u);
  EXPECT_EQ(result.skipped, 2u);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, StaleEpochJournalLinesAreIgnored) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);
    store.checkpoint();  // epoch 1, journal truncated
  }
  {
    // Simulate the crash window where an epoch-0 line survived the
    // truncation: checksum-valid, but stamped with the old epoch.
    const std::string body = "0 0 0 0 9.5 ";
    std::ofstream out(path_ + ".journal", std::ios::binary | std::ios::app);
    out << std::hex << stable_hash64(body) << std::dec << ' ' << body << '\n';
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 0u);
  EXPECT_EQ(result.skipped, 1u);  // the stale line must not double-apply
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, JournalIsBoundedByAutoSnapshots) {
  Asrtm before(make_kb());
  CheckpointStore::Options options;
  options.journal_capacity = 4;
  {
    CheckpointStore store(path_, options);
    store.attach(before);
    for (int i = 0; i < 11; ++i) before.send_feedback(0, 0, 1.2);
    EXPECT_EQ(store.journaled_events(), 11u);
    EXPECT_EQ(store.snapshots_written(), 2u);  // after events 4 and 8
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_, options);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 3u);  // only the post-snapshot tail
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, GroupCommitBoundsKillLossToOneBatch) {
  Asrtm before(make_kb());
  CheckpointStore::Options options;
  options.journal_capacity = 1024;  // no auto-snapshot in this test
  options.group_commit = 8;
  {
    CheckpointStore store(path_, options);
    store.attach(before);
    // 20 events = two committed batches of 8 plus 4 buffered in memory.
    for (int i = 0; i < 20; ++i) before.send_feedback(0, 0, 1.2);
    EXPECT_EQ(store.journaled_events(), 20u);
    EXPECT_EQ(store.buffered_events(), 4u);
    // Crash here: the buffered tail is lost, the committed batches are not.
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_, options);
  const auto result = store.attach(after);
  EXPECT_EQ(result.replayed, 16u);  // exactly the committed prefix
  EXPECT_GE(result.replayed + options.group_commit, 20u)
      << "a crash may lose at most one uncommitted batch";

  // The restored state matches a run that only ever saw the committed
  // prefix — the loss is a clean truncation, not corruption.
  Asrtm reference(make_kb());
  for (int i = 0; i < 16; ++i) reference.send_feedback(0, 0, 1.2);
  expect_same_learned_state(reference, after);
}

TEST_F(CheckpointTest, CheckpointSupersedesTheBufferedBatch) {
  Asrtm before(make_kb());
  CheckpointStore::Options options;
  options.group_commit = 8;
  {
    CheckpointStore store(path_, options);
    store.attach(before);
    before.send_feedback(0, 0, 1.3);
    before.send_feedback(0, 1, 55.0);
    EXPECT_EQ(store.buffered_events(), 2u);
    store.checkpoint();  // snapshot covers the buffered events
    EXPECT_EQ(store.buffered_events(), 0u);
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_, options);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 0u);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, GroupCommitOfOneFlushesEveryEvent) {
  Asrtm asrtm(make_kb());
  CheckpointStore store(path_);  // default group_commit = 1
  store.attach(asrtm);
  asrtm.send_feedback(0, 0, 1.3);
  EXPECT_EQ(store.buffered_events(), 0u);  // nothing a crash could lose
}

TEST_F(CheckpointTest, JournalFailChaosDropsExactlyTheFailedBatch) {
  Asrtm before(make_kb());
  CheckpointStore::Options options;
  options.journal_capacity = 1024;
  options.group_commit = 4;
  {
    CheckpointStore store(path_, options);
    store.attach(before);
    ChaosSpec spec;
    spec.journal_fail = 1.0;  // every flush fails while armed
    ChaosEngine::global().install(spec);
    for (int i = 0; i < 4; ++i) before.send_feedback(0, 0, 1.2);  // batch lost
    ChaosEngine::global().disarm();
    for (int i = 0; i < 4; ++i) before.send_feedback(0, 0, 1.2);  // batch lands
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_, options);
  const auto result = store.attach(after);
  EXPECT_EQ(result.replayed, 4u);  // only the healthy batch survives
}

TEST_F(CheckpointTest, ActiveStateSurvivesKillAndResume) {
  Asrtm before(make_kb());
  const auto define_states = [](StateManager& sm) {
    sm.define_state("performance", {},
                    Rank{RankDirection::kMinimize, {{0, 1.0}}});
    sm.define_state("energy", {}, Rank{RankDirection::kMinimize, {{1, 1.0}}});
  };
  {
    CheckpointStore store(path_);
    store.attach(before);
    StateManager sm(before);
    define_states(sm);
    sm.switch_to("energy");
    before.send_feedback(0, 1, 55.0);
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_EQ(result.active_state, "energy");

  // The application re-creates its states and re-activates the journaled
  // one — requirements are application-owned, not replayed blindly.
  StateManager sm(after);
  define_states(sm);
  if (!result.active_state.empty()) sm.switch_to(result.active_state);
  EXPECT_EQ(sm.active_state(), "energy");
  EXPECT_EQ(after.find_best_operating_point(), before.find_best_operating_point());
}

TEST_F(CheckpointTest, DecisionEpochSurvivesSnapshotRoundTrip) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);
    (void)before.find_best_operating_point();
    store.detach();
  }
  const std::uint64_t epoch_at_snapshot = before.decision_epoch();

  Asrtm after(make_kb());
  (void)after.find_best_operating_point();  // warm the fresh cache first
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  // Monotonic across the kill-and-resume, and strictly past the
  // snapshot: the restored state must never serve a pre-restore cache.
  EXPECT_GT(after.decision_epoch(), epoch_at_snapshot);
  EXPECT_EQ(after.find_best_operating_point(), before.find_best_operating_point());
  EXPECT_FALSE(after.last_decision_was_cached());
  (void)after.find_best_operating_point();
  EXPECT_TRUE(after.last_decision_was_cached());
}

TEST_F(CheckpointTest, TornFinalJournalLineDropsOnlyThatLine) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);  // 6 events, each flushed (group_commit = 1)
  }
  // Cut the final journal line mid-byte — the write the crash tore.
  std::ifstream in(path_ + ".journal", std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 4u);
  {
    std::ofstream out(path_ + ".journal", std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 4));
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_EQ(result.replayed, 5u);  // the valid prefix, nothing less
  EXPECT_EQ(result.skipped, 1u);   // exactly the torn line

  // The restored state matches a run that only saw the first 5 events.
  Asrtm reference(make_kb());
  reference.send_feedback(0, 0, 1.3);
  reference.send_feedback(0, 0, 1.4);
  reference.send_feedback(2, 1, 60.0);
  reference.report_variant_failure(1);
  reference.report_variant_failure(1);
  expect_same_learned_state(reference, after);
}

TEST_F(CheckpointTest, CrashMidCheckpointLeavesMixedEpochsRestoredExactly) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(before);
    mutate(before);  // 6 epoch-0 journal lines
    ChaosSpec spec;
    spec.crash_site = "journal-truncate";
    ChaosEngine::global().install(spec);
    store.checkpoint();  // snapshot published, death before the rotation
    EXPECT_TRUE(store.crashed());
    ChaosEngine::global().disarm();
  }
  // On disk: an epoch-1 snapshot holding all six events, next to six
  // stale epoch-0 journal lines that must not double-apply.
  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_EQ(result.rung, RecoveryRung::kNewestSnapshot);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 0u);
  EXPECT_EQ(result.skipped, 6u);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, CorruptedNewestSnapshotFallsBackToAnOlderGeneration) {
  Asrtm before(make_kb());
  {
    CheckpointStore store(path_);  // default generations = 2
    store.attach(before);
    mutate(before);
    store.checkpoint();  // epoch 1 published
    before.send_feedback(3, 0, 2.0);
    before.send_feedback(3, 1, 58.0);
    store.checkpoint();  // epoch 2 published; epoch 1 rotates to .1
    before.send_feedback(1, 0, 1.7);
  }
  ASSERT_TRUE(fs::exists(path_ + ".1"));
  {
    // Flip the newest snapshot into garbage (a torn copy, bad sectors).
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << "zzzz garbage zzzz\n";
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_EQ(result.rung, RecoveryRung::kOlderGeneration);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.generation, 1u);
  // Generation 1 (epoch 1, six events) + chain replay of the epoch-1
  // journal (2 events) and the live epoch-2 journal (1 event): nothing
  // learned is lost even though the newest snapshot is gone.
  EXPECT_EQ(result.replayed, 3u);
  expect_same_learned_state(before, after);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::global().gauge("checkpoint.recovery_rung").value(), 1.0);
  // The restore collapsed to a fresh newest snapshot past every epoch
  // seen on disk.
  EXPECT_GT(store.epoch(), 2u);
  EXPECT_TRUE(fs::exists(path_));
}

TEST_F(CheckpointTest, DiskFullEntersDegradedModeThenRecoversWithAFullSnapshot) {
  Asrtm before(make_kb());
  double now = 0.0;
  {
    CheckpointStore store(path_);
    store.set_time_source([&now] { return now; });
    store.attach(before);
    before.send_feedback(0, 0, 1.3);  // journaled while healthy

    ChaosSpec spec;
    spec.disk_full = 1.0;  // the device is full until further notice
    ChaosEngine::global().install(spec);
    before.send_feedback(0, 0, 1.4);  // the flush hits injected ENOSPC
    EXPECT_TRUE(store.degraded());
    const auto sick = store.disk_status();
    EXPECT_GE(sick.io_errors, 1u);
    EXPECT_EQ(sick.degraded_entries, 1u);
    EXPECT_NE(sick.last_error.find("enospc"), std::string::npos)
        << sick.last_error;

    // Learning continues in memory; the journal misses these events.
    before.send_feedback(2, 1, 60.0);
    before.report_variant_success(2);
    EXPECT_GE(store.disk_status().events_dropped, 2u);
    EXPECT_TRUE(store.degraded()) << "backoff must gate the re-probe";

    // The disk heals.  The first event past the backoff probes, writes
    // a FULL snapshot (nothing learned while degraded is lost), and
    // resumes journaling.
    ChaosEngine::global().disarm();
    now = 10.0;  // well past the first backoff interval
    before.send_feedback(3, 0, 2.0);
    EXPECT_FALSE(store.degraded());
    const auto healed = store.disk_status();
    EXPECT_EQ(healed.recoveries, 1u);
    // Regression: the old store latched a journal failure forever; a
    // recovered disk must count a reopen and journal again.
    EXPECT_GE(healed.journal_reopens, 1u);
    before.send_feedback(3, 1, 59.0);  // journaled after recovery
  }

  Asrtm after(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 1u);  // only the post-recovery journal line
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, StaleTmpSnapshotsAreSweptAtConstruction) {
  {
    std::ofstream out(path_ + ".tmp.99999", std::ios::binary);
    out << "torn snapshot a dead process left behind";
  }
  {
    std::ofstream out(path_ + ".tmp.4242", std::ios::binary);
    out << "another one";
  }
  Asrtm asrtm(make_kb());
  CheckpointStore store(path_);
  EXPECT_FALSE(fs::exists(path_ + ".tmp.99999"));
  EXPECT_FALSE(fs::exists(path_ + ".tmp.4242"));
  // And the store works normally afterwards.
  store.attach(asrtm);
  asrtm.send_feedback(0, 0, 1.2);
  store.checkpoint();
  EXPECT_TRUE(fs::exists(path_));
}

TEST_F(CheckpointTest, OptionsFromEnvParseAndClamp) {
  ::setenv("SOCRATES_CHECKPOINT_GENERATIONS", "3", 1);
  ::setenv("SOCRATES_CHECKPOINT_FSYNC", "1", 1);
  ::setenv("SOCRATES_CHECKPOINT_PROBE_MS", "250", 1);
  const auto options = CheckpointStore::Options::from_env();
  EXPECT_EQ(options.generations, 3u);
  EXPECT_TRUE(options.fsync_on_commit);
  EXPECT_DOUBLE_EQ(options.probe_base_s, 0.25);
  ::setenv("SOCRATES_CHECKPOINT_GENERATIONS", "99", 1);  // clamps to 8
  EXPECT_EQ(CheckpointStore::Options::from_env().generations, 8u);
  ::unsetenv("SOCRATES_CHECKPOINT_GENERATIONS");
  ::unsetenv("SOCRATES_CHECKPOINT_FSYNC");
  ::unsetenv("SOCRATES_CHECKPOINT_PROBE_MS");
}

TEST_F(CheckpointTest, FsyncOnCommitRoundTrips) {
  Asrtm before(make_kb());
  CheckpointStore::Options options;
  options.fsync_on_commit = true;
  {
    CheckpointStore store(path_, options);
    store.attach(before);
    mutate(before);
    store.checkpoint();
    before.send_feedback(3, 0, 2.0);
  }
  Asrtm after(make_kb());
  CheckpointStore store(path_, options);
  const auto result = store.attach(after);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.replayed, 1u);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, JournalQuotaForcesASnapshotRotation) {
  Asrtm before(make_kb());
  CheckpointStore::Options options;
  options.journal_capacity = 1 << 20;  // the byte quota must trigger first
  options.journal_max_bytes = 256;
  {
    CheckpointStore store(path_, options);
    store.attach(before);
    for (int i = 0; i < 64; ++i) before.send_feedback(0, 0, 1.2);
    EXPECT_GE(store.snapshots_written(), 2u)
        << "the quota never rotated the journal";
    EXPECT_LE(fs::file_size(path_ + ".journal"), 512u)
        << "the live journal must stay near the quota";
  }
  Asrtm after(make_kb());
  CheckpointStore store(path_, options);
  store.attach(after);
  expect_same_learned_state(before, after);
}

TEST_F(CheckpointTest, ResumedRunKeepsJournalingAfterRestore) {
  Asrtm first(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(first);
    mutate(first);
  }
  Asrtm second(make_kb());
  {
    CheckpointStore store(path_);
    store.attach(second);
    second.send_feedback(0, 0, 1.6);  // post-resume drift, journaled too
  }
  Asrtm third(make_kb());
  CheckpointStore store(path_);
  const auto result = store.attach(third);
  EXPECT_EQ(result.replayed, 7u);  // 6 pre-crash + 1 post-resume
  expect_same_learned_state(second, third);
}

}  // namespace
}  // namespace socrates::margot
