// Tests for the platform fault-injection framework: sensor-fault
// corruption of the energy/clock sensor path and variant faults
// (crashing / garbage compiler-config clones) in the executor.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/registry.hpp"
#include "platform/executor.hpp"
#include "platform/fault_injection.hpp"
#include "support/error.hpp"

namespace socrates::platform {
namespace {

TEST(FaultSchedule, RejectsMalformedFaults) {
  FaultSchedule sched;
  EXPECT_THROW(sched.add(SensorFault{SensorFaultKind::kSpike, 5.0, 5.0, 1.0, 1.0}),
               ContractViolation);
  EXPECT_THROW(sched.add(SensorFault{SensorFaultKind::kSpike, 0.0, 1.0, 1.0, 2.0}),
               ContractViolation);
  EXPECT_THROW(sched.add(SensorFault{SensorFaultKind::kCounterWrap, 0.0, 1.0,
                                     /*magnitude=*/0.0, 1.0}),
               ContractViolation);
  VariantFault vf;
  vf.crash_probability = 1.5;
  EXPECT_THROW(sched.add(vf), ContractViolation);
  VariantFault zero_time_crash;
  zero_time_crash.crash_probability = 0.5;
  zero_time_crash.crash_fraction = 0.0;
  EXPECT_THROW(sched.add(zero_time_crash), ContractViolation);
}

TEST(FaultyEnergyCounter, PassesThroughWithEmptySchedule) {
  VirtualClock clock;
  SimulatedRapl rapl;
  FaultSchedule sched;
  FaultyEnergyCounter faulty(rapl, clock, sched);
  rapl.accrue(2.0, 50.0);
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), rapl.energy_uj());
  EXPECT_EQ(faulty.backend(), "faulty(simulated)");
}

TEST(FaultyEnergyCounter, CounterWrapAppliesModulo) {
  VirtualClock clock;
  SimulatedRapl rapl;
  FaultSchedule sched;
  const double wrap = 1e9;  // a 1000 J register
  sched.add(SensorFault{SensorFaultKind::kCounterWrap, 0.0, 100.0, wrap, 1.0});
  FaultyEnergyCounter faulty(rapl, clock, sched);

  rapl.accrue(11.0, 100.0);  // 1100 J = 1.1e9 uJ
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), std::fmod(1.1e9, wrap));
  EXPECT_DOUBLE_EQ(rapl.energy_uj(), 1.1e9);  // the true counter is untouched
}

TEST(FaultyEnergyCounter, WrapInactiveOutsideEpisode) {
  VirtualClock clock;
  SimulatedRapl rapl;
  FaultSchedule sched;
  sched.add(SensorFault{SensorFaultKind::kCounterWrap, 10.0, 20.0, 1e9, 1.0});
  FaultyEnergyCounter faulty(rapl, clock, sched);
  rapl.accrue(11.0, 100.0);
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), 1.1e9);  // t=0: fault not active
  clock.advance(20.0);
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), 1.1e9);  // t=20: episode over
}

TEST(FaultyEnergyCounter, StuckCounterFreezesThenRecovers) {
  VirtualClock clock;
  SimulatedRapl rapl;
  FaultSchedule sched;
  sched.add(SensorFault{SensorFaultKind::kStuckCounter, 1.0, 2.0, 0.0, 1.0});
  FaultyEnergyCounter faulty(rapl, clock, sched);

  rapl.accrue(1.0, 100.0);
  clock.advance(1.0);  // enter the episode
  const double frozen = faulty.energy_uj();
  rapl.accrue(1.0, 100.0);
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), frozen);  // still the latched value
  clock.advance(1.5);  // leave the episode
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), rapl.energy_uj());
}

TEST(FaultyEnergyCounter, ReadFailureYieldsNaN) {
  VirtualClock clock;
  SimulatedRapl rapl;
  FaultSchedule sched;
  sched.add(SensorFault{SensorFaultKind::kReadFailure, 0.0, 100.0, 0.0, 1.0});
  FaultyEnergyCounter faulty(rapl, clock, sched);
  rapl.accrue(1.0, 100.0);
  EXPECT_TRUE(std::isnan(faulty.energy_uj()));
}

TEST(FaultyEnergyCounter, SpikeInflatesSingleRead) {
  VirtualClock clock;
  SimulatedRapl rapl;
  FaultSchedule sched;
  sched.add(SensorFault{SensorFaultKind::kSpike, 0.0, 100.0, /*uJ=*/5e8, 1.0});
  FaultyEnergyCounter faulty(rapl, clock, sched);
  rapl.accrue(1.0, 100.0);  // 1e8 uJ
  EXPECT_DOUBLE_EQ(faulty.energy_uj(), 1e8 + 5e8);
}

TEST(FaultyClock, JitterPerturbsOnlyInsideEpisode) {
  VirtualClock clock;
  FaultSchedule sched;
  sched.add(SensorFault{SensorFaultKind::kClockJitter, 10.0, 20.0, /*sigma=*/0.5, 1.0});
  FaultyClock faulty(clock, sched);

  clock.advance(5.0);
  EXPECT_DOUBLE_EQ(faulty.now_s(), 5.0);  // outside: exact passthrough
  clock.advance(10.0);                    // t=15, inside
  double max_dev = 0.0;
  for (int i = 0; i < 32; ++i)
    max_dev = std::max(max_dev, std::abs(faulty.now_s() - 15.0));
  EXPECT_GT(max_dev, 1e-3);  // jitter visibly perturbs the reading
}

TEST(Executor, VariantCrashThrowsAndBurnsPartialTime) {
  const auto model = PerformanceModel::paper_platform();
  const Configuration c{FlagConfig(OptLevel::kO3), 8, BindingPolicy::kClose};

  KernelExecutor clean(model, kernels::find_benchmark("2mm").model, 1.0, 5);
  const double nominal = clean.run(c).exec_time_s;

  KernelExecutor exec(model, kernels::find_benchmark("2mm").model, 1.0, 5);
  FaultSchedule sched;
  VariantFault vf;
  vf.config = FlagConfig(OptLevel::kO3);
  vf.crash_probability = 1.0;
  vf.crash_fraction = 0.25;
  sched.add(vf);
  exec.set_faults(std::move(sched));

  EXPECT_THROW(exec.run(c), VariantCrash);
  EXPECT_NEAR(exec.clock().now_s(), 0.25 * nominal, 0.05 * nominal);
  EXPECT_GT(exec.rapl().energy_uj(), 0.0);  // the partial run cost energy
}

TEST(Executor, VariantGarbageInflatesMeasurement) {
  const auto model = PerformanceModel::paper_platform();
  const Configuration c{FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose};

  KernelExecutor clean(model, kernels::find_benchmark("atax").model, 1.0, 5);
  const double nominal = clean.run(c).exec_time_s;

  KernelExecutor exec(model, kernels::find_benchmark("atax").model, 1.0, 5);
  FaultSchedule sched;
  VariantFault vf;
  vf.config = FlagConfig(OptLevel::kO2);
  vf.garbage_probability = 1.0;
  vf.garbage_scale = 50.0;
  sched.add(vf);
  exec.set_faults(std::move(sched));

  const auto m = exec.run(c);
  EXPECT_GT(m.exec_time_s, 20.0 * nominal);  // 50x scaled by U(0.5, 1.5)
  EXPECT_NEAR(m.energy_j, m.exec_time_s * m.avg_power_w, 1e-9);
}

TEST(Executor, VariantFaultOnlyHitsItsConfig) {
  const auto model = PerformanceModel::paper_platform();
  KernelExecutor exec(model, kernels::find_benchmark("2mm").model, 1.0, 5);
  FaultSchedule sched;
  VariantFault vf;
  vf.config = FlagConfig(OptLevel::kO3);
  vf.crash_probability = 1.0;
  vf.crash_fraction = 0.5;
  sched.add(vf);
  exec.set_faults(std::move(sched));

  const Configuration other{FlagConfig(OptLevel::kO2), 8, BindingPolicy::kClose};
  EXPECT_NO_THROW(exec.run(other));
}

TEST(Executor, SensorFaultsDoNotPerturbTrueMeasurements) {
  // Sensor faults corrupt only the monitors' view; the machine itself
  // (and the noise stream) is unchanged.
  const auto model = PerformanceModel::paper_platform();
  const Configuration c{FlagConfig(OptLevel::kO2), 16, BindingPolicy::kSpread};

  KernelExecutor clean(model, kernels::find_benchmark("syrk").model, 1.0, 77);
  KernelExecutor faulted(model, kernels::find_benchmark("syrk").model, 1.0, 77);
  FaultSchedule sched;
  sched.add(SensorFault{SensorFaultKind::kCounterWrap, 0.0, 1e9, 1e8, 1.0});
  sched.add(SensorFault{SensorFaultKind::kSpike, 0.0, 1e9, 5e8, 0.5});
  faulted.set_faults(std::move(sched));

  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(clean.run(c).exec_time_s, faulted.run(c).exec_time_s);
  EXPECT_NE(faulted.sensor_counter().energy_uj(), faulted.rapl().energy_uj());
}

}  // namespace
}  // namespace socrates::platform
